package main

import (
	"bufio"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: mlid
cpu: shared
BenchmarkFigUniform/4-port_4-tree         	       1	  93240227 ns/op	         1.037 mlid_over_slid	13652800 B/op	    4812 allocs/op
BenchmarkFigUniform/32-port_2-tree        	       1	1242818469 ns/op	         1.256 mlid_over_slid	74104928 B/op	   49277 allocs/op
BenchmarkFigUniform/32-port_2-tree/shards=8-8 	       1	 431818469 ns/op	74104928 B/op	   49277 allocs/op
PASS
ok  	mlid	3.781s
`

func TestParse(t *testing.T) {
	doc, err := parse(bufio.NewScanner(strings.NewReader(sample)))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Goos != "linux" || doc.Goarch != "amd64" || doc.Package != "mlid" || doc.CPU != "shared" {
		t.Fatalf("header: %+v", doc)
	}
	if len(doc.Results) != 3 {
		t.Fatalf("%d results, want 3", len(doc.Results))
	}
	r := doc.Results[1]
	if r.Name != "BenchmarkFigUniform/32-port_2-tree" || r.Iterations != 1 {
		t.Fatalf("result: %+v", r)
	}
	if r.NsPerOp != 1242818469 || r.BytesPerOp != 74104928 || r.AllocsPerOp != 49277 {
		t.Fatalf("measurements: %+v", r)
	}
	if r.Metrics["mlid_over_slid"] != 1.256 {
		t.Fatalf("custom metric: %+v", r.Metrics)
	}
	// GOMAXPROCS defaults to 1 without the "-N" suffix ("-tree" is not one);
	// shards stays 0 for non-sharded benchmarks.
	if r.GOMAXPROCS != 1 || r.Shards != 0 {
		t.Fatalf("parallelism of %q: %+v", r.Name, r)
	}
	sh := doc.Results[2]
	if sh.GOMAXPROCS != 8 || sh.Shards != 8 {
		t.Fatalf("parallelism of %q: %+v", sh.Name, sh)
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"BenchmarkX 1 ns/op",      // odd pair
		"BenchmarkX abc 5 ns/op",  // bad iteration count
		"BenchmarkX 1 fast ns/op", // bad measurement
	} {
		if _, err := parse(bufio.NewScanner(strings.NewReader(bad))); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
}

func TestParseEmptyInput(t *testing.T) {
	doc, err := parse(bufio.NewScanner(strings.NewReader("PASS\n")))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Results) != 0 {
		t.Fatalf("results from non-bench input: %+v", doc.Results)
	}
}
