// Command benchjson converts `go test -bench` text output into a stable JSON
// document, so benchmark results can be committed (BENCH_<n>.json) and diffed
// across PRs instead of living in commit messages. It reads the benchmark
// output on stdin and writes JSON to stdout:
//
//	go test -run xxx -bench 'BenchmarkFig' -benchmem -benchtime 1x . \
//	    | go run ./cmd/benchjson > BENCH_5.json
//
// Each "Benchmark..." result line becomes one record with the standard
// ns/op, B/op and allocs/op measurements; any custom testing.B metrics
// (mlid_over_slid, peak bandwidths, ...) land in the metrics map. Non-result
// lines (goos/goarch headers, PASS, ok) are skipped. The command exits
// non-zero when no benchmark line was found — in CI that turns a silently
// skipped bench run into a failure.
//
// To keep committed files comparable across machines, each record also
// carries the parallelism that produced it: gomaxprocs is decoded from the
// benchmark name's standard "-N" suffix (absent means 1), shards from a
// "shards=N" path element (the sharded-engine benchmarks encode their lane
// count there), and the host's "cpu:" header line is preserved verbatim.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// result is one parsed benchmark line. GOMAXPROCS is the procs count go test
// encodes as the name's trailing "-N" (1 when absent); Shards is the lane
// count from a "shards=N" name element (0 when the benchmark is not
// shard-parametrized).
type result struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	GOMAXPROCS  int                `json:"gomaxprocs"`
	Shards      int                `json:"shards,omitempty"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64              `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// document is the emitted file; Goos/Goarch/CPU come from the bench header so
// a committed file records what machine class produced it.
type document struct {
	Goos    string   `json:"goos,omitempty"`
	Goarch  string   `json:"goarch,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Package string   `json:"package,omitempty"`
	Results []result `json:"results"`
}

func main() {
	doc, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(2)
	}
	if len(doc.Results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark result lines on stdin")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(2)
	}
}

func parse(sc *bufio.Scanner) (document, error) {
	var doc document
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			doc.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case strings.HasPrefix(line, "pkg:"):
			doc.Package = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		r, err := parseResult(line)
		if err != nil {
			return document{}, err
		}
		doc.Results = append(doc.Results, r)
	}
	return doc, sc.Err()
}

// parseResult decodes one result line: a name, an iteration count, then
// (value, unit) pairs.
func parseResult(line string) (result, error) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return result{}, fmt.Errorf("malformed benchmark line %q", line)
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return result{}, fmt.Errorf("iteration count in %q: %v", line, err)
	}
	r := result{
		Name:       fields[0],
		Iterations: iters,
		GOMAXPROCS: procsOf(fields[0]),
		Shards:     shardsOf(fields[0]),
	}
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return result{}, fmt.Errorf("measurement %q in %q: %v", fields[i], line, err)
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = val
		case "B/op":
			r.BytesPerOp = int64(val)
		case "allocs/op":
			r.AllocsPerOp = int64(val)
		case "MB/s":
			addMetric(&r, "mb_per_s", val)
		default:
			addMetric(&r, unit, val)
		}
	}
	return r, nil
}

// procsOf decodes go test's GOMAXPROCS suffix ("BenchmarkX/case-8" -> 8);
// the suffix is omitted when GOMAXPROCS was 1.
func procsOf(name string) int {
	if i := strings.LastIndexByte(name, '-'); i >= 0 {
		if n, err := strconv.Atoi(name[i+1:]); err == nil && n > 0 {
			return n
		}
	}
	return 1
}

// shardsOf decodes a "shards=N" element of a sub-benchmark name, 0 if none.
func shardsOf(name string) int {
	for _, part := range strings.Split(name, "/") {
		// Strip a possible trailing GOMAXPROCS suffix off the last element.
		if i := strings.LastIndexByte(part, '-'); i >= 0 {
			if _, err := strconv.Atoi(part[i+1:]); err == nil {
				part = part[:i]
			}
		}
		if rest, ok := strings.CutPrefix(part, "shards="); ok {
			if n, err := strconv.Atoi(rest); err == nil && n > 0 {
				return n
			}
		}
	}
	return 0
}

func addMetric(r *result, name string, val float64) {
	if r.Metrics == nil {
		r.Metrics = map[string]float64{}
	}
	r.Metrics[name] = val
}
