// Command ibverify statically verifies a fat-tree fabric's forwarding state
// without simulating a packet: it configures an m-port n-tree under the
// chosen routing scheme and runs the internal/verify analyzers — every
// (source, DLID) route reaches its destination, the per-VL channel-dependency
// graphs are acyclic, the LID addressing is consistent and fits the 16-bit
// space, and the quality pass bounds per-link load and path dilation.
//
// Examples:
//
//	ibverify -m 8 -n 3 -scheme MLID -vls 2
//	ibverify -m 8 -n 2 -scheme MLID -fault 2:2,9:3     # verify SM-repaired tables
//	ibverify -m 8 -n 2 -fault 2:2 -select adaptive     # quality pass under a path-selection policy
//	ibverify -m 8 -n 3 -degraded 0.10                  # static-vs-simulated sweep
//	ibverify -m 16 -n 3 -scheme MLID                   # LID-space overflow finding
//
// Exit status is 1 when any error-severity finding is reported (or, under
// -degraded, when the static ranking contradicts the simulated one), 0 when
// the fabric verifies clean — warnings, which document fault-explained
// degradation, do not fail the run.
package main

import (
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"mlid/internal/core"
	"mlid/internal/experiment"
	"mlid/internal/ib"
	"mlid/internal/sim"
	"mlid/internal/topology"
	"mlid/internal/verify"
)

func main() {
	var (
		m        = flag.Int("m", 8, "switch port count (power of two >= 4)")
		n        = flag.Int("n", 2, "tree dimension")
		scheme   = flag.String("scheme", "MLID", "routing scheme: MLID or SLID")
		vls      = flag.Int("vls", 1, "data virtual lanes to prove deadlock freedom for")
		jsonOut  = flag.Bool("json", false, "emit findings as JSON lines (CSV under -degraded)")
		fault    = flag.String("fault", "", "comma-separated sw:port links to fail before verifying the SM-repaired tables")
		selName  = flag.String("select", "", "trace the quality pass under a path-selection policy (rank, random, flowspray, adaptive, pktspray); default: the scheme's canonical choice, or rank reselection under -fault")
		degraded = flag.Float64("degraded", 0, "run the degraded-fabric sweep up to this fault rate (e.g. 0.10), comparing SLID vs MLID+reselect statically and in simulation")
		quick    = flag.Bool("quick", false, "with -degraded, use the reduced-cost study spec")
	)
	flag.Parse()

	if *degraded > 0 {
		os.Exit(runDegraded(*m, *n, *degraded, *quick, *jsonOut))
	}
	os.Exit(runVerify(*m, *n, *scheme, *vls, *fault, *selName, *jsonOut))
}

// runVerify is the single-fabric mode: configure, optionally fail+repair,
// then run every analyzer and render the report.
func runVerify(m, n int, schemeName string, vls int, faultList, selName string, jsonOut bool) int {
	tree, err := topology.New(m, n)
	fatal(err)
	eng, err := core.ByName(schemeName)
	fatal(err)

	// The addressing analyzer runs against the scheme's LID plan before
	// Configure, so a fabric whose plan overflows the 16-bit space (MLID on
	// FT(16,3) needs 65,537 LIDs) is reported as a finding with the sizing
	// arithmetic as witness instead of dying on the configuration error.
	if rep := addressingOnly(tree, eng); rep.Errors() > 0 {
		render(rep, jsonOut)
		return 1
	}

	sn, err := (&ib.SubnetManager{Tree: tree, Engine: eng}).Configure()
	fatal(err)
	in := verify.FromSubnet(sn)

	var fs *core.FaultSet
	if faultList != "" {
		links, err := parseLinks(tree, faultList)
		fatal(err)
		fs = core.NewFaultSet()
		for _, l := range links {
			fs.FailLink(tree, topology.SwitchID(l[0]), int(l[1]))
		}
		if _, _, err := core.RepairSubnet(sn, fs); err != nil {
			fatal(err)
		}
		in.DeadLinks = links
		// Quality traces what sources actually send under reselection: the
		// first surviving DLID, exactly as the simulator's Reselect mode.
		in.SelectDLID = func(src, dst topology.NodeID) (ib.LID, bool) {
			lid, _, ok := core.SelectDLID(tree, eng, src, dst, fs)
			return lid, ok
		}
	}
	if selName != "" {
		// A named policy overrides the rank-reselection hook: the quality
		// pass traces what each source's first packet would carry under the
		// selector, over the same fault-filtered candidate set the simulator
		// presents (an empty fault set filters nothing).
		sel, err := sim.SelectorByName(selName)
		fatal(err)
		in.SelectDLID = func(src, dst topology.NodeID) (ib.LID, bool) {
			base, count, canonical, mask := core.UsableOffsets(tree, eng, src, dst, fs)
			if mask == 0 {
				return 0, false
			}
			rng := rand.New(rand.NewSource(int64(src)*1_000_003 + int64(dst)))
			return base + ib.LID(sim.StaticSelect(sel, src, dst, base, count, canonical, mask, rng)), true
		}
	}

	rep, err := verify.Run(in, verify.Options{VLs: vls})
	fatal(err)
	render(rep, jsonOut)
	if rep.Errors() > 0 {
		return 1
	}
	return 0
}

// addressingOnly wraps the pre-Configure addressing check in a Report so both
// output modes render it like any other run.
func addressingOnly(tree *topology.Tree, eng ib.RoutingEngine) *verify.Report {
	rep := &verify.Report{}
	rep.Findings = append(rep.Findings, verify.AddressingScheme(tree, eng)...)
	return rep
}

// runDegraded is the sweep mode: the experiment's degraded-fabric study plus
// the static-vs-simulated ordering check the study exists to enforce.
func runDegraded(m, n int, maxRate float64, quick, jsonOut bool) int {
	spec := experiment.DegradedStudySpec()
	if quick {
		spec = experiment.QuickDegradedSpec()
	}
	spec.Network = experiment.Network{M: m, N: n}
	var rates []float64
	for _, r := range spec.Rates {
		if r <= maxRate {
			rates = append(rates, r)
		}
	}
	if len(rates) == 0 {
		rates = []float64{maxRate}
	}
	spec.Rates = rates

	rows, err := experiment.DegradedStudy(spec)
	fatal(err)
	if jsonOut {
		fmt.Print(experiment.DegradedCSV(rows))
	} else {
		fmt.Print(experiment.FormatDegraded(rows))
	}
	if err := experiment.DegradedOrderingConsistent(rows); err != nil {
		fmt.Fprintf(os.Stderr, "ibverify: %v\n", err)
		return 1
	}
	fmt.Println("ordering: static predicted-accepted ranking matches simulated accepted throughput at every rate")
	return 0
}

// parseLinks parses a "sw:port,sw:port" list into switch-side link endpoints.
func parseLinks(tree *topology.Tree, s string) ([][2]int32, error) {
	var out [][2]int32
	for _, tok := range strings.Split(s, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		parts := strings.SplitN(tok, ":", 2)
		if len(parts) != 2 {
			return nil, fmt.Errorf("bad link %q: want sw:port", tok)
		}
		sw, err := strconv.Atoi(parts[0])
		if err != nil {
			return nil, fmt.Errorf("bad link %q: %v", tok, err)
		}
		port, err := strconv.Atoi(parts[1])
		if err != nil {
			return nil, fmt.Errorf("bad link %q: %v", tok, err)
		}
		if !tree.ValidSwitch(topology.SwitchID(sw)) || port < 0 || port >= tree.M() {
			return nil, fmt.Errorf("link %q outside the fabric (switches 0..%d, ports 0..%d)",
				tok, tree.Switches()-1, tree.M()-1)
		}
		out = append(out, [2]int32{int32(sw), int32(port)})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty -fault link list")
	}
	return out, nil
}

func render(rep *verify.Report, jsonOut bool) {
	if jsonOut {
		fatal(rep.WriteJSON(os.Stdout))
		return
	}
	rep.WriteHuman(os.Stdout)
}

func fatal(err error) {
	if err != nil {
		if errors.Is(err, ib.ErrLIDSpaceExhausted) {
			fmt.Fprintf(os.Stderr, "ibverify: %v\n  hint: the SLID scheme, or a smaller tree, fits the 16-bit LID space\n", err)
		} else {
			fmt.Fprintf(os.Stderr, "ibverify: %v\n", err)
		}
		os.Exit(1)
	}
}
