// Command ibreport runs the paper's evaluation figures and emits a markdown
// reproduction report: Table 1, every curve's peak accepted traffic and
// low-load latency, and pass/fail verdicts for the paper's Observations 1-5.
//
// Examples:
//
//	ibreport -quick                 # reduced sweeps (~a minute), stdout
//	ibreport -o EXPERIMENTS-new.md  # full-fidelity sweeps, write to file
//	ibreport -quick -only centric   # only the centric figures
package main

import (
	"flag"
	"fmt"
	"os"

	"mlid/internal/experiment"
)

func main() {
	var (
		quick     = flag.Bool("quick", false, "reduced load points and windows")
		out       = flag.String("o", "", "write the report to this file instead of stdout")
		only      = flag.String("only", "", "restrict to one pattern: uniform or centric")
		ablations = flag.Bool("ablations", false, "append the ablation suite (EX-A..H, switching)")
		studies   = flag.Bool("studies", false, "append the scaling and SM bring-up studies")
	)
	flag.Parse()

	specs := experiment.Figures()
	if *quick {
		specs = experiment.QuickFigures()
	}
	var figs []experiment.Figure
	for _, spec := range specs {
		if *only != "" && spec.Pattern != *only {
			continue
		}
		fmt.Fprintf(os.Stderr, "ibreport: running %s ...\n", spec.Title())
		fig, err := spec.Run()
		fatal(err)
		figs = append(figs, fig)
	}
	obs := experiment.CheckObservations(figs)
	report, err := experiment.Report(figs, obs)
	fatal(err)
	if *ablations {
		fmt.Fprintln(os.Stderr, "ibreport: running ablation suite ...")
		rows, err := experiment.RunAblations(*quick)
		fatal(err)
		report += "\n## Ablations\n\n" + experiment.AblationTable(rows)
	}
	if *studies {
		fmt.Fprintln(os.Stderr, "ibreport: running scaling study ...")
		sc, err := experiment.ScalingStudy(experiment.PaperNetworks(), *quick)
		fatal(err)
		report += "\n## Scaling (Observation 5 / Remark 3)\n\n" + experiment.FormatScaling(sc)
		fmt.Fprintln(os.Stderr, "ibreport: running bring-up study ...")
		br, err := experiment.BringupStudy(experiment.PaperNetworks())
		fatal(err)
		report += "\n## Subnet-manager bring-up cost\n\n" + experiment.FormatBringup(br)
	}

	if *out == "" {
		fmt.Print(report)
		return
	}
	fatal(os.WriteFile(*out, []byte(report), 0o644))
	fmt.Fprintf(os.Stderr, "ibreport: wrote %s\n", *out)
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "ibreport:", err)
		os.Exit(1)
	}
}
