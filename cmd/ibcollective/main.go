// Command ibcollective measures collective-exchange makespans as closed
// workloads: all messages enqueued at time zero, the run ends when the
// fabric drains.
//
// Examples:
//
//	ibcollective -m 8 -n 2 -collective gather -bytes 4096
//	ibcollective -m 8 -n 3 -collective alltoall -bytes 1024 -vls 2
package main

import (
	"flag"
	"fmt"
	"os"

	"mlid"
)

func main() {
	var (
		m          = flag.Int("m", 8, "switch port count (power of two >= 4)")
		n          = flag.Int("n", 2, "tree dimension")
		collective = flag.String("collective", "gather", "collective: gather or alltoall")
		bytesPer   = flag.Int("bytes", 4096, "bytes per message")
		root       = flag.Int("root", 0, "root node for the gather")
		vls        = flag.Int("vls", 1, "data virtual lanes")
		seed       = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	tree, err := mlid.NewTree(*m, *n)
	fatal(err)

	var msgs []mlid.Message
	switch *collective {
	case "gather":
		if *root < 0 || *root >= tree.Nodes() {
			fatal(fmt.Errorf("root %d out of range [0,%d)", *root, tree.Nodes()))
		}
		msgs = mlid.GatherMessages(tree, mlid.NodeID(*root), *bytesPer)
	case "alltoall":
		msgs = mlid.AllToAllMessages(tree, *bytesPer)
	default:
		fatal(fmt.Errorf("unknown collective %q", *collective))
	}

	fmt.Printf("%s, %s of %d bytes/message (%d messages), %d VL(s)\n\n",
		tree, *collective, *bytesPer, len(msgs), *vls)
	fmt.Printf("%-7s %14s %12s %16s %14s\n", "scheme", "makespan", "packets", "aggregate BW", "mean latency")
	var spans []int64
	for _, scheme := range []mlid.Scheme{mlid.SLID(), mlid.MLID()} {
		subnet, err := mlid.Configure(tree, scheme)
		fatal(err)
		res, err := mlid.SimulateBatch(mlid.BatchConfig{
			Subnet:   subnet,
			Messages: msgs,
			DataVLs:  *vls,
			Seed:     *seed,
		})
		fatal(err)
		fmt.Printf("%-7s %11d ns %12d %11.2f B/ns %11.0f ns\n",
			scheme.Name(), res.MakespanNs, res.Packets, res.AggregateBandwidth, res.MeanLatencyNs)
		spans = append(spans, res.MakespanNs)
	}
	if len(spans) == 2 && spans[1] > 0 {
		fmt.Printf("\nMLID speedup over SLID: %.2fx\n", float64(spans[0])/float64(spans[1]))
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "ibcollective:", err)
		os.Exit(1)
	}
}
