// Command ibsim runs a single discrete-event simulation of an m-port n-tree
// InfiniBand network and prints the measured operating point.
//
// Example:
//
//	ibsim -m 8 -n 3 -scheme MLID -pattern centric -load 0.4 -vls 2
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"mlid"
)

// startCPUProfile begins CPU profiling into path ("" disables) and returns a
// stop function.
func startCPUProfile(path string) func() {
	if path == "" {
		return func() {}
	}
	f, err := os.Create(path)
	fatal(err)
	fatal(pprof.StartCPUProfile(f))
	return func() {
		pprof.StopCPUProfile()
		fatal(f.Close())
	}
}

// writeMemProfile records a heap profile to path ("" disables).
func writeMemProfile(path string) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	fatal(err)
	runtime.GC() // up-to-date allocation statistics
	fatal(pprof.WriteHeapProfile(f))
	fatal(f.Close())
}

func main() {
	var (
		m         = flag.Int("m", 8, "switch port count (power of two >= 4)")
		n         = flag.Int("n", 2, "tree dimension")
		scheme    = flag.String("scheme", "MLID", "routing scheme: MLID or SLID")
		pattern   = flag.String("pattern", "uniform", "traffic: uniform, centric, bitcomplement, bitreversal, shift")
		hotspot   = flag.Int("hotspot", 0, "hotspot node for the centric pattern")
		load      = flag.Float64("load", 0.3, "offered load in bytes/ns per node (1.0 = link rate)")
		vls       = flag.Int("vls", 1, "data virtual lanes (paper: 1, 2 or 4)")
		pktSize   = flag.Int("packet", 256, "packet size in bytes")
		buf       = flag.Int("buf", 1, "per-VL buffer depth in packets")
		warmup    = flag.Int64("warmup", 100_000, "warmup window in ns")
		measure   = flag.Int64("measure", 300_000, "measurement window in ns")
		seed      = flag.Int64("seed", 1, "random seed")
		selName   = flag.String("select", "rank", "path-selection policy: rank, random, flowspray, adaptive, pktspray")
		reception = flag.String("reception", "ideal", "endnode reception model: ideal or link")
		switching = flag.String("switching", "vct", "switching mode: vct or saf")
		hist      = flag.Bool("hist", false, "print a latency histogram")
		topPorts  = flag.Int("ports", 0, "print the N busiest directed links")
		tracePkts = flag.Int("trace", 0, "print hop-by-hop timelines of the first N packets")
		shards    = flag.Int("shards", 0, "parallel simulation shards; 0 = min(GOMAXPROCS, leaf groups), 1 = the single-engine path; results are identical for every value")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProf   = flag.String("memprofile", "", "write a heap profile after the run to this file")
	)
	flag.Parse()

	tree, err := mlid.NewTree(*m, *n)
	fatal(err)
	s, err := mlid.SchemeByName(*scheme)
	fatal(err)
	pat, err := mlid.PatternByName(*pattern, tree.Nodes(), *hotspot)
	fatal(err)
	subnet, err := mlid.Configure(tree, s)
	fatal(err)
	sel, err := mlid.SelectorByName(*selName)
	fatal(err)

	rec := mlid.ReceptionIdeal
	switch *reception {
	case "ideal":
	case "link":
		rec = mlid.ReceptionLink
	default:
		fatal(fmt.Errorf("unknown reception model %q", *reception))
	}
	sw := mlid.SwitchingVCT
	switch *switching {
	case "vct":
	case "saf":
		sw = mlid.SwitchingSAF
	default:
		fatal(fmt.Errorf("unknown switching mode %q", *switching))
	}

	var latHist *mlid.Histogram
	if *hist {
		latHist = mlid.NewHistogram(256, 24)
	}
	nshards := *shards
	if nshards == 0 {
		nshards = runtime.GOMAXPROCS(0)
		if max := tree.MaxShards(); nshards > max {
			nshards = max
		}
	}

	stopCPU := startCPUProfile(*cpuProf)
	res, err := mlid.Simulate(mlid.SimConfig{
		Subnet:           subnet,
		Pattern:          pat,
		DataVLs:          *vls,
		PacketSize:       *pktSize,
		BufPackets:       *buf,
		OfferedLoad:      *load,
		WarmupNs:         *warmup,
		MeasureNs:        *measure,
		Reception:        rec,
		Switching:        sw,
		PathSelect:       sel,
		LatencyHist:      latHist,
		CollectPortStats: *topPorts > 0,
		TracePackets:     *tracePkts,
		Seed:             *seed,
		Shards:           nshards,
	})
	stopCPU()
	writeMemProfile(*memProf)
	fatal(err)

	fmt.Printf("%s, %s scheme, %s traffic, %s selection, %d VL(s), %d-byte packets\n",
		tree, s.Name(), pat.Name(), sel.Name(), *vls, *pktSize)
	fmt.Printf("offered load:      %.4f bytes/ns/node\n", res.OfferedLoad)
	fmt.Printf("accepted traffic:  %.4f bytes/ns/node", res.Accepted)
	if res.Saturated {
		fmt.Printf("  (saturated)")
	}
	fmt.Println()
	fmt.Printf("mean latency:      %.1f ns\n", res.MeanLatencyNs)
	fmt.Printf("p99 latency:       %.1f ns\n", res.P99LatencyNs)
	fmt.Printf("max latency:       %.1f ns\n", res.MaxLatencyNs)
	fmt.Printf("packets delivered: %d in window (%d total, %d in flight at end)\n",
		res.DeliveredWindow, res.TotalDelivered, res.InFlightAtEnd)
	if res.OutOfOrder >= 0 {
		fmt.Printf("out-of-order:      %d deliveries\n", res.OutOfOrder)
	}
	fmt.Printf("link utilization:  max %.3f, mean %.3f\n", res.MaxLinkUtilization, res.MeanLinkUtilization)
	fmt.Printf("simulator events:  %d over %d ns\n", res.Events, res.EndTime)
	if latHist != nil {
		fmt.Printf("\nlatency distribution (ns):\n%s", latHist.Render(48))
	}
	if *topPorts > 0 {
		fmt.Printf("\nbusiest directed links:\n")
		n := *topPorts
		if n > len(res.PortStats) {
			n = len(res.PortStats)
		}
		for _, ps := range res.PortStats[:n] {
			if ps.IsNode {
				fmt.Printf("  node %-4d injection      util %.3f, %d packets\n", ps.Node, ps.Utilization, ps.Packets)
			} else {
				fmt.Printf("  %-14s port %-3d  util %.3f, %d packets\n",
					tree.SwitchLabel(mlid.SwitchID(ps.Switch)), ps.Port, ps.Utilization, ps.Packets)
			}
		}
	}
	for _, tr := range res.Traces {
		fmt.Printf("\npacket %d: node %d -> node %d (DLID %d, VL %d)\n", tr.Seq, tr.Src, tr.Dst, tr.DLID, tr.VL)
		fmt.Printf("  generated %-8d injected %-8d", tr.GenNs, tr.InjectNs)
		if tr.DeliverNs > 0 {
			fmt.Printf(" delivered %d (latency %d ns)\n", tr.DeliverNs, tr.DeliverNs-tr.GenNs)
		} else {
			fmt.Printf(" still in flight at end\n")
		}
		for _, h := range tr.Hops {
			fmt.Printf("  %-14s arrive %-8d depart %d\n", tree.SwitchLabel(mlid.SwitchID(h.Switch)), h.ArriveNs, h.DepartNs)
		}
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "ibsim:", err)
		if errors.Is(err, mlid.ErrLIDSpaceExhausted) {
			fmt.Fprintln(os.Stderr, "ibsim: hint: the SLID scheme, or a smaller tree, fits the 16-bit LID space")
		}
		os.Exit(1)
	}
}
