// Command ibsweep regenerates the paper's evaluation artifacts: Table 1 and
// the eight latency-vs-accepted-traffic figures (SLID/MLID x 1/2/4 virtual
// lanes, uniform and 50%-centric traffic, four network sizes).
//
// Examples:
//
//	ibsweep -table1                 # print the network configuration table
//	ibsweep -fig F5 -chart          # run one figure, render an ASCII chart
//	ibsweep -fig all -quick -csv out/   # all figures (reduced), CSV per figure
//	ibsweep -fault                  # recovery-transient study (live link failure)
//	ibsweep -fault -quick -csv out/     # reduced study, CSV to out/recovery.csv
//	ibsweep -chaos                  # seeded chaos campaign with reliable transport
//	ibsweep -chaos -quick -csv out/     # reduced campaign, CSV to out/chaos.csv
//	ibsweep -degraded               # static verifier vs simulation across fault rates
//	ibsweep -degraded -quick -csv out/  # reduced study, CSV to out/degraded.csv
//	ibsweep -adaptive               # path-selection family study (rank/random/flowspray/adaptive/pktspray)
//	ibsweep -adaptive -quick -csv out/  # reduced study, CSV to out/adaptive.csv
//	ibsweep -smstudy                # in-band subnet management: oracle vs lossy traps/SMPs, failover, degradation
//	ibsweep -smstudy -quick -csv out/   # reduced study, CSV to out/sm.csv (+ sm_series.csv with -series)
//	ibsweep -fault -series -csv out/    # also write per-interval recovery-tail curves
//
// Full-fidelity sweeps of the two 128-node networks take a few minutes and
// the 512-node network longer; -quick cuts the load points and windows while
// preserving the curve shapes.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"

	"mlid"
)

func main() {
	var (
		table1   = flag.Bool("table1", false, "print Table 1 (network configurations)")
		fig      = flag.String("fig", "", "figure to run: F1..F8, a short name like c-16x2, or 'all'")
		fault    = flag.Bool("fault", false, "run the recovery-transient study: a live link failure mid-measurement, SLID vs MLID")
		chaos    = flag.Bool("chaos", false, "run the seeded chaos campaign: link flaps and switch kills with the reliable transport, SLID vs MLID")
		degraded = flag.Bool("degraded", false, "run the degraded-fabric quality study: static verifier predictions vs simulated throughput across fault rates, SLID vs MLID")
		adaptive = flag.Bool("adaptive", false, "run the path-selection family study: every pluggable selector on policy-separating workloads over the MLID fabric, with a degraded-fabric axis")
		smstudy  = flag.Bool("smstudy", false, "run the in-band subnet-management study: oracle vs in-band SM across trap-loss rates and routing schemes, with a master-SM outage forcing standby failover")
		series   = flag.Bool("series", false, "with -fault or -smstudy and -csv, also write the per-interval recovery-tail curves (delivered/dropped/retransmits/failed/unreachable per bin)")
		quick    = flag.Bool("quick", false, "reduced load points and windows")
		net      = flag.String("net", "", "override the study network as MxN (e.g. 32x2 = 32-port 2-tree); applies to -fault, -chaos, -degraded, -adaptive and -smstudy")
		shards   = flag.Int("shards", 0, "parallel shards per simulation run; 0 = min(GOMAXPROCS, leaf groups) per network, 1 = the single-engine path; results are identical for every value")
		chart    = flag.Bool("chart", false, "render ASCII charts to stdout")
		csvDir   = flag.String("csv", "", "directory to write per-figure CSV files into")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile of the sweeps to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile after the sweeps to this file")
	)
	flag.Parse()

	var netOverride *mlid.EvalNetwork
	if *net != "" {
		var m, n int
		if k, err := fmt.Sscanf(*net, "%dx%d", &m, &n); err != nil || k != 2 {
			fatal(fmt.Errorf("-net %q: want MxN, e.g. 32x2", *net))
		}
		netOverride = &mlid.EvalNetwork{M: m, N: n}
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		fatal(err)
		fatal(pprof.StartCPUProfile(f))
		defer func() {
			pprof.StopCPUProfile()
			fatal(f.Close())
		}()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			fatal(err)
			runtime.GC() // up-to-date allocation statistics
			fatal(pprof.WriteHeapProfile(f))
			fatal(f.Close())
		}()
	}

	if *table1 {
		rows, err := mlid.EvalTable1(mlid.EvalNetworks())
		fatal(err)
		printTable1(rows)
	}
	if *fault {
		spec := mlid.EvalRecoverySpecDefault()
		if *quick {
			spec = mlid.EvalRecoverySpecQuick()
		}
		if netOverride != nil {
			spec.Network = *netOverride
		}
		spec.Shards = *shards
		fmt.Printf("recovery transient: %s, link down at %d ns, uniform load %.2f B/ns/node\n",
			spec.Network, spec.FaultNs, spec.OfferedLoad)
		rows, err := mlid.EvalRecoveryStudy(spec)
		fatal(err)
		fmt.Print(mlid.FormatRecovery(rows))
		if *csvDir != "" {
			fatal(os.MkdirAll(*csvDir, 0o755))
			path := filepath.Join(*csvDir, "recovery.csv")
			fatal(os.WriteFile(path, []byte(mlid.RecoveryCSV(rows)), 0o644))
			fmt.Printf("wrote %s\n", path)
			if *series {
				path := filepath.Join(*csvDir, "recovery_series.csv")
				fatal(os.WriteFile(path, []byte(mlid.RecoverySeriesCSV(rows)), 0o644))
				fmt.Printf("wrote %s\n", path)
			}
		}
		fmt.Println()
	}
	if *chaos {
		spec := mlid.EvalChaosSpecDefault()
		if *quick {
			spec = mlid.EvalChaosSpecQuick()
		}
		if netOverride != nil {
			spec.Network = *netOverride
		}
		spec.Shards = *shards
		fmt.Printf("chaos campaign: %s, fault rates %v, outages %d-%d ns, %d switch kill(s), seed %d\n",
			spec.Network, spec.FaultRates, spec.MinDownNs, spec.MaxDownNs, spec.SwitchKills, spec.Seed)
		rows, err := mlid.EvalChaosStudy(spec)
		fatal(err)
		fmt.Print(mlid.FormatChaos(rows))
		if *csvDir != "" {
			fatal(os.MkdirAll(*csvDir, 0o755))
			path := filepath.Join(*csvDir, "chaos.csv")
			fatal(os.WriteFile(path, []byte(mlid.ChaosCSV(rows)), 0o644))
			fmt.Printf("wrote %s\n", path)
		}
		fmt.Println()
	}
	if *degraded {
		spec := mlid.EvalDegradedSpecDefault()
		if *quick {
			spec = mlid.EvalDegradedSpecQuick()
		}
		if netOverride != nil {
			spec.Network = *netOverride
		}
		spec.Shards = *shards
		fmt.Printf("degraded fabric: %s, fault rates %v, uniform load %.2f B/ns/node, seed %d\n",
			spec.Network, spec.Rates, spec.OfferedLoad, spec.Seed)
		rows, err := mlid.EvalDegradedStudy(spec)
		fatal(err)
		fmt.Print(mlid.FormatDegraded(rows))
		fatal(mlid.DegradedOrderingConsistent(rows))
		fmt.Println("ordering: static predicted-accepted ranking matches simulated accepted throughput at every rate")
		if *csvDir != "" {
			fatal(os.MkdirAll(*csvDir, 0o755))
			path := filepath.Join(*csvDir, "degraded.csv")
			fatal(os.WriteFile(path, []byte(mlid.DegradedCSV(rows)), 0o644))
			fmt.Printf("wrote %s\n", path)
		}
		fmt.Println()
	}
	if *adaptive {
		spec := mlid.EvalAdaptiveSpecDefault()
		if *quick {
			spec = mlid.EvalAdaptiveSpecQuick()
		}
		if netOverride != nil {
			spec.Network = *netOverride
		}
		spec.Shards = *shards
		fmt.Printf("path-selection family: %s, load %.2f B/ns/node, fault rate %.2f, seed %d\n",
			spec.Network, spec.OfferedLoad, spec.FaultRate, spec.Seed)
		rows, err := mlid.EvalAdaptiveStudy(spec)
		fatal(err)
		fmt.Print(mlid.FormatAdaptive(rows))
		if *csvDir != "" {
			fatal(os.MkdirAll(*csvDir, 0o755))
			path := filepath.Join(*csvDir, "adaptive.csv")
			fatal(os.WriteFile(path, []byte(mlid.AdaptiveCSV(rows)), 0o644))
			fmt.Printf("wrote %s\n", path)
		}
		fmt.Println()
	}
	if *smstudy {
		spec := mlid.EvalSMSpecDefault()
		if *quick {
			spec = mlid.EvalSMSpecQuick()
		}
		if netOverride != nil {
			spec.Network = *netOverride
		}
		spec.Shards = *shards
		fmt.Printf("in-band subnet management: %s, trap-loss rates %v, sweep every %d ns, master-SM outage %d-%d ns, seed %d\n",
			spec.Network, spec.TrapLossProbs, spec.SweepIntervalNs, spec.SMDownNs, spec.SMUpNs, spec.Seed)
		rows, err := mlid.EvalSMStudy(spec)
		fatal(err)
		fmt.Print(mlid.FormatSM(rows))
		fmt.Println("invariants: packet conservation exact on every run; each in-band run lost traps, recovered them by sweep, and failed over to the standby SM exactly once")
		if *csvDir != "" {
			fatal(os.MkdirAll(*csvDir, 0o755))
			path := filepath.Join(*csvDir, "sm.csv")
			fatal(os.WriteFile(path, []byte(mlid.SMCSV(rows)), 0o644))
			fmt.Printf("wrote %s\n", path)
			if *series {
				path := filepath.Join(*csvDir, "sm_series.csv")
				fatal(os.WriteFile(path, []byte(mlid.SMSeriesCSV(rows)), 0o644))
				fmt.Printf("wrote %s\n", path)
			}
		}
		fmt.Println()
	}
	if *fig == "" {
		if !*table1 && !*fault && !*chaos && !*degraded && !*adaptive && !*smstudy {
			flag.Usage()
			os.Exit(2)
		}
		return
	}

	specs := mlid.EvalFigures()
	if *quick {
		specs = mlid.EvalQuickFigures()
	}
	var selected []mlid.EvalFigureSpec
	if *fig == "all" {
		selected = specs
	} else {
		want, err := mlid.EvalFigureByID(*fig)
		fatal(err)
		for _, s := range specs {
			if s.ID == want.ID {
				selected = append(selected, s)
			}
		}
	}

	for _, spec := range selected {
		spec.Shards = *shards
		fmt.Printf("running %s ...\n", spec.Title())
		res, err := spec.Run()
		fatal(err)
		fmt.Print(res.Summary())
		if *chart {
			fmt.Println(res.Chart())
		}
		if *csvDir != "" {
			fatal(os.MkdirAll(*csvDir, 0o755))
			path := filepath.Join(*csvDir, spec.ID+".csv")
			fatal(os.WriteFile(path, []byte(res.CSV()), 0o644))
			fmt.Printf("wrote %s\n", path)
		}
		fmt.Println()
	}
}

func printTable1(rows []mlid.EvalTable1Row) {
	fmt.Println("Table 1: simulated m-port n-tree InfiniBand networks")
	fmt.Printf("%-16s %7s %9s %7s %4s %10s %9s %11s\n",
		"network", "nodes", "switches", "links", "LMC", "LIDs/node", "LIDspace", "paths(a=0)")
	for _, r := range rows {
		fmt.Printf("%-16s %7d %9d %7d %4d %10d %9d %11d\n",
			r.Network.String(), r.Nodes, r.Switches, r.Links, r.LMC, r.LIDsPerNode, r.LIDSpace, r.PathsAlpha0)
	}
	fmt.Println()
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "ibsweep:", err)
		if errors.Is(err, mlid.ErrLIDSpaceExhausted) {
			fmt.Fprintln(os.Stderr, "ibsweep: hint: the SLID scheme, or a smaller tree, fits the 16-bit LID space")
		}
		os.Exit(1)
	}
}
