// Command ibtopo inspects m-port n-tree InfiniBand fabrics: topology
// construction and validation, LID assignment tables (the paper's Figure
// 10), route tracing (Figures 11 and the Section 4.3 example), forwarding
// table dumps, and static link-load analysis.
//
// Examples:
//
//	ibtopo -m 4 -n 3                         # summary + validation
//	ibtopo -m 4 -n 3 -lids                   # Figure 10: LID set per node
//	ibtopo -m 4 -n 3 -trace 0:4              # route P(000) -> P(100)
//	ibtopo -m 4 -n 3 -paths 0:4              # all LMC-selectable routes
//	ibtopo -m 4 -n 3 -lft 12                 # forwarding table of switch 12
//	ibtopo -m 8 -n 2 -hotload 31             # all-to-one link load, both schemes
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"mlid"
)

func main() {
	var (
		m        = flag.Int("m", 4, "switch port count (power of two >= 4)")
		n        = flag.Int("n", 3, "tree dimension")
		scheme   = flag.String("scheme", "MLID", "routing scheme: MLID or SLID")
		lids     = flag.Bool("lids", false, "print every node's LID assignment (paper Figure 10)")
		trace    = flag.String("trace", "", "trace the selected route between src:dst node IDs")
		paths    = flag.String("paths", "", "print all selectable routes between src:dst node IDs")
		lft      = flag.Int("lft", -1, "dump the forwarding table of the given switch ID")
		hotload  = flag.Int("hotload", -1, "static all-to-one link load toward the given node, both schemes")
		render   = flag.Bool("render", false, "draw the tree level by level")
		describe = flag.Int("describe", -1, "describe the wiring of the given switch ID")
		compare  = flag.Bool("compare", false, "compare against the k-ary n-tree built from the same switches")
		deadlock = flag.Bool("deadlock", false, "verify the forwarding tables' channel-dependency graph is acyclic")
		export   = flag.String("export", "", "write the configured subnet (LIDs + LFTs) to this JSON file")
		dot      = flag.Bool("dot", false, "emit the topology in Graphviz dot format")
		dotPath  = flag.String("dotpath", "", "emit dot with the selected route src:dst highlighted")
	)
	flag.Parse()

	tree, err := mlid.NewTree(*m, *n)
	fatal(err)
	s, err := mlid.SchemeByName(*scheme)
	fatal(err)

	// The dot emitters print only the graph, for piping into graphviz.
	if *dot {
		fmt.Print(tree.DOT())
		return
	}
	if *dotPath != "" {
		src, dst := parsePair(*dotPath, tree.Nodes())
		path, err := mlid.Trace(tree, s, src, dst)
		fatal(err)
		hops := make([]struct {
			Switch  mlid.SwitchID
			OutPort int
		}, len(path.Hops))
		for i, h := range path.Hops {
			hops[i].Switch, hops[i].OutPort = h.Switch, h.OutPort
		}
		fmt.Print(tree.PathDOT(src, dst, hops))
		return
	}

	fmt.Printf("%s  (height %d, %d links, %d levels)\n", tree, tree.N()+1, tree.Links(), tree.Levels())
	fatal(tree.Validate())
	fmt.Println("topology validation: ok")

	subnet, err := mlid.Configure(tree, s)
	fatal(err)
	fmt.Printf("scheme %s: LMC %d, %d LIDs/node, LID space %d\n",
		s.Name(), s.LMC(tree), 1<<s.LMC(tree), subnet.LIDSpace())

	switch {
	case *export != "":
		data, err := mlid.ExportSubnet(subnet)
		fatal(err)
		fatal(os.WriteFile(*export, data, 0o644))
		fmt.Printf("wrote %s (%d bytes)\n", *export, len(data))
	case *compare:
		ft, kary, err := tree.CompareWithKaryNTree()
		fatal(err)
		fmt.Printf("\n%s", mlid.FormatFamilyComparison(ft, kary))
	case *deadlock:
		rep, err := mlid.CheckDeadlockFree(subnet)
		fatal(err)
		if rep.Free() {
			fmt.Printf("\ndeadlock free: %d channels, %d dependencies, no cycles\n",
				rep.Channels, rep.Dependencies)
		} else {
			fmt.Printf("\nDEPENDENCY CYCLE: %v\n", rep.Cycle)
			os.Exit(1)
		}
	case *render:
		fmt.Printf("\n%s", tree.Render(110))
		fmt.Printf("mean pair distance %.2f switches, bisection %d links\n",
			tree.AverageDistance(), tree.BisectionLinks())
	case *describe >= 0:
		if *describe >= tree.Switches() {
			fatal(fmt.Errorf("switch %d out of range [0,%d)", *describe, tree.Switches()))
		}
		fmt.Printf("\n%s", tree.DescribeSwitch(mlid.SwitchID(*describe)))
	case *lids:
		fmt.Printf("\n%-10s %-8s %s\n", "node", "PID", "LID set")
		for p := 0; p < tree.Nodes(); p++ {
			r := subnet.Endports[p]
			fmt.Printf("%-10s %-8d %s\n", tree.NodeLabel(mlid.NodeID(p)), p, r)
		}
	case *trace != "":
		src, dst := parsePair(*trace, tree.Nodes())
		path, err := mlid.Trace(tree, s, src, dst)
		fatal(err)
		fmt.Printf("\nDLID %d (%d switch hops): %s\n", path.DLID, path.Len(), path.Render(tree))
	case *paths != "":
		src, dst := parsePair(*paths, tree.Nodes())
		all, err := mlid.AllPaths(tree, s, src, dst)
		fatal(err)
		fmt.Printf("\n%d distinct route(s) from %s to %s:\n", len(all), tree.NodeLabel(src), tree.NodeLabel(dst))
		for _, p := range all {
			fmt.Printf("  DLID %-5d %s\n", p.DLID, p.Render(tree))
		}
	case *lft >= 0:
		if *lft >= tree.Switches() {
			fatal(fmt.Errorf("switch %d out of range [0,%d)", *lft, tree.Switches()))
		}
		sw := mlid.SwitchID(*lft)
		fmt.Printf("\nLFT of %s (physical output port per DLID):\n", tree.SwitchLabel(sw))
		entries := subnet.LFTs[sw].Entries()
		for lid := 1; lid < len(entries); lid++ {
			if entries[lid] == 0xFF {
				continue
			}
			owner, _ := subnet.OwnerOf(mlid.LID(lid))
			fmt.Printf("  DLID %-5d -> port %-3d (%s)\n", lid, entries[lid], tree.NodeLabel(owner))
		}
	case *hotload >= 0:
		dst := mlid.NodeID(*hotload)
		fmt.Printf("\nall-to-one static link load toward %s:\n", tree.NodeLabel(dst))
		for _, sch := range mlid.Schemes() {
			rep, err := mlid.LinkLoad(tree, sch, mlid.AllToOne(tree, dst))
			fatal(err)
			fmt.Printf("  %-5s max %.0f  mean %.2f  (hottest: %v)\n", sch.Name(), rep.Max, rep.Mean, rep.MaxLink)
			for _, top := range rep.TopLinks(3) {
				fmt.Printf("        %-14v load %.0f\n", top.Key, top.Load)
			}
		}
	}
}

func parsePair(s string, nodes int) (mlid.NodeID, mlid.NodeID) {
	parts := strings.SplitN(s, ":", 2)
	if len(parts) != 2 {
		fatal(fmt.Errorf("want src:dst, got %q", s))
	}
	a, err := strconv.Atoi(parts[0])
	fatal(err)
	b, err := strconv.Atoi(parts[1])
	fatal(err)
	if a < 0 || a >= nodes || b < 0 || b >= nodes {
		fatal(fmt.Errorf("node IDs must be in [0,%d)", nodes))
	}
	return mlid.NodeID(a), mlid.NodeID(b)
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "ibtopo:", err)
		os.Exit(1)
	}
}
