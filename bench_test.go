// Benchmarks regenerating the paper's evaluation artifacts. One benchmark
// per table and figure, plus the ablation studies DESIGN.md calls out.
//
// The figure benchmarks run reduced sweeps (two load points, two VL counts)
// so a default `go test -bench=.` completes in minutes; cmd/ibsweep runs the
// full-fidelity sweeps. Each figure benchmark reports, via b.ReportMetric:
//
//	mlid_peak_Bns / slid_peak_Bns — peak accepted traffic per scheme
//	mlid_over_slid               — the throughput ratio behind the paper's
//	                               Observations 1, 3 and 5
package mlid_test

import (
	"fmt"
	"testing"

	"mlid"
)

// benchFigure runs a reduced version of one evaluation figure. shards is the
// per-run lane count handed to the sharded engine (0 = the auto default,
// min(GOMAXPROCS, leaf groups)); results are bit-identical for every value,
// so shard-parametrized runs measure wall-clock only.
func benchFigure(b *testing.B, id string, shards int) {
	spec, err := mlid.EvalFigureByID(id)
	if err != nil {
		b.Fatal(err)
	}
	// Reduce cost: two loads spanning the knee, the 1-VL and 4-VL curves,
	// shorter windows. Shapes (who wins, by what factor) are preserved.
	spec.Loads = []float64{0.3, 0.7}
	spec.VLs = []int{1, 4}
	spec.WarmupNs = 20_000
	spec.MeasureNs = 60_000
	spec.Shards = shards

	var fig mlid.EvalFigure
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fig, err = spec.Run()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	m := fig.Curve("MLID 1VL").PeakAccepted()
	s := fig.Curve("SLID 1VL").PeakAccepted()
	b.ReportMetric(m, "mlid_peak_Bns")
	b.ReportMetric(s, "slid_peak_Bns")
	if s > 0 {
		b.ReportMetric(m/s, "mlid_over_slid")
	}
}

// BenchmarkFigUniform regenerates figures F1..F4: latency vs accepted
// traffic under uniform traffic on the four evaluation networks. The largest
// network (32-port 2-tree, 512 nodes, 32 leaf groups) additionally runs
// shard-parametrized so BENCH_*.json records the sharded engine's scaling;
// cmd/benchjson decodes the lane count from the "shards=N" name element.
func BenchmarkFigUniform(b *testing.B) {
	for i, nw := range mlid.EvalNetworks() {
		id := fmt.Sprintf("F%d", i+1)
		b.Run(nw.String(), func(b *testing.B) {
			benchFigure(b, id, 0)
		})
		if nw.M == 32 && nw.N == 2 {
			for _, shards := range []int{1, 8} {
				b.Run(fmt.Sprintf("%s/shards=%d", nw, shards), func(b *testing.B) {
					benchFigure(b, id, shards)
				})
			}
		}
	}
}

// BenchmarkFigCentric regenerates figures F5..F8: the 50%-centric hotspot
// pattern on the four evaluation networks.
func BenchmarkFigCentric(b *testing.B) {
	for i, nw := range mlid.EvalNetworks() {
		id := fmt.Sprintf("F%d", i+5)
		b.Run(nw.String(), func(b *testing.B) {
			benchFigure(b, id, 0)
		})
	}
}

// BenchmarkTable1 regenerates Table 1 (network configurations and MLID
// addressing parameters).
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := mlid.EvalTable1(mlid.EvalNetworks())
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 4 {
			b.Fatal("bad table")
		}
	}
}

// BenchmarkSubnetConfigure measures the subnet manager bring-up (discovery,
// LID assignment, forwarding-table computation) per scheme and network.
func BenchmarkSubnetConfigure(b *testing.B) {
	for _, nw := range mlid.EvalNetworks() {
		tree, err := mlid.NewTree(nw.M, nw.N)
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range mlid.Schemes() {
			b.Run(fmt.Sprintf("%s/%s", nw, s.Name()), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := mlid.Configure(tree, s); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkTrace measures per-route path resolution.
func BenchmarkTrace(b *testing.B) {
	tree, _ := mlid.NewTree(16, 2)
	for _, s := range mlid.Schemes() {
		b.Run(s.Name(), func(b *testing.B) {
			n := tree.Nodes()
			for i := 0; i < b.N; i++ {
				src := mlid.NodeID(i % n)
				dst := mlid.NodeID((i*7 + 1) % n)
				if src == dst {
					dst = (dst + 1) % mlid.NodeID(n)
				}
				if _, err := mlid.Trace(tree, s, src, dst); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkLinkLoad measures the static analysis on the all-to-one matrix
// (experiment EX-D).
func BenchmarkLinkLoad(b *testing.B) {
	tree, _ := mlid.NewTree(8, 3)
	flows := mlid.AllToOne(tree, 0)
	for _, s := range mlid.Schemes() {
		b.Run(s.Name(), func(b *testing.B) {
			var maxLoad float64
			for i := 0; i < b.N; i++ {
				rep, err := mlid.LinkLoad(tree, s, flows)
				if err != nil {
					b.Fatal(err)
				}
				maxLoad = rep.Max
			}
			b.ReportMetric(maxLoad, "max_link_load")
		})
	}
}

// BenchmarkSimulatorThroughput measures raw event-processing speed of the
// discrete-event engine on a mid-size network at high load.
func BenchmarkSimulatorThroughput(b *testing.B) {
	tree, _ := mlid.NewTree(8, 3)
	sn, err := mlid.Configure(tree, mlid.MLID())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var events int64
	for i := 0; i < b.N; i++ {
		res, err := mlid.Simulate(mlid.SimConfig{
			Subnet:      sn,
			Pattern:     mlid.UniformTraffic(tree.Nodes()),
			OfferedLoad: 0.6,
			WarmupNs:    10_000,
			MeasureNs:   50_000,
			Seed:        int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		events += res.Events
	}
	b.StopTimer()
	b.ReportMetric(float64(events)/float64(b.N), "events/op")
}

// BenchmarkAblationVL8 extends the paper's VL sweep beyond 4 lanes
// (experiment EX-A): does an 8th lane still help SLID under the hotspot?
func BenchmarkAblationVL8(b *testing.B) {
	tree, _ := mlid.NewTree(8, 2)
	for _, vls := range []int{4, 8} {
		for _, s := range mlid.Schemes() {
			sn, err := mlid.Configure(tree, s)
			if err != nil {
				b.Fatal(err)
			}
			b.Run(fmt.Sprintf("%s/VL%d", s.Name(), vls), func(b *testing.B) {
				var acc float64
				for i := 0; i < b.N; i++ {
					res, err := mlid.Simulate(mlid.SimConfig{
						Subnet:      sn,
						Pattern:     mlid.CentricTraffic(tree.Nodes(), 0, 0.5),
						DataVLs:     vls,
						OfferedLoad: 0.6,
						WarmupNs:    20_000,
						MeasureNs:   60_000,
						Seed:        9,
					})
					if err != nil {
						b.Fatal(err)
					}
					acc = res.Accepted
				}
				b.ReportMetric(acc, "accepted_Bns")
			})
		}
	}
}

// BenchmarkAblationBuffers varies the per-VL buffer depth (EX-B).
func BenchmarkAblationBuffers(b *testing.B) {
	tree, _ := mlid.NewTree(8, 2)
	sn, err := mlid.Configure(tree, mlid.MLID())
	if err != nil {
		b.Fatal(err)
	}
	for _, buf := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("buf%d", buf), func(b *testing.B) {
			var acc float64
			for i := 0; i < b.N; i++ {
				res, err := mlid.Simulate(mlid.SimConfig{
					Subnet:      sn,
					Pattern:     mlid.CentricTraffic(tree.Nodes(), 0, 0.5),
					BufPackets:  buf,
					OfferedLoad: 0.6,
					WarmupNs:    20_000,
					MeasureNs:   60_000,
					Seed:        10,
				})
				if err != nil {
					b.Fatal(err)
				}
				acc = res.Accepted
			}
			b.ReportMetric(acc, "accepted_Bns")
		})
	}
}

// BenchmarkAblationPacketSize varies the packet size (EX-C).
func BenchmarkAblationPacketSize(b *testing.B) {
	tree, _ := mlid.NewTree(8, 2)
	sn, err := mlid.Configure(tree, mlid.MLID())
	if err != nil {
		b.Fatal(err)
	}
	for _, size := range []int{64, 256, 1024} {
		b.Run(fmt.Sprintf("%dB", size), func(b *testing.B) {
			var lat float64
			for i := 0; i < b.N; i++ {
				res, err := mlid.Simulate(mlid.SimConfig{
					Subnet:      sn,
					Pattern:     mlid.UniformTraffic(tree.Nodes()),
					PacketSize:  size,
					OfferedLoad: 0.3,
					WarmupNs:    20_000,
					MeasureNs:   60_000,
					Seed:        11,
				})
				if err != nil {
					b.Fatal(err)
				}
				lat = res.MeanLatencyNs
			}
			b.ReportMetric(lat, "mean_latency_ns")
		})
	}
}

// BenchmarkAblationReception contrasts the two endnode consumption models
// under the hotspot (see DESIGN.md, "Reception model").
func BenchmarkAblationReception(b *testing.B) {
	tree, _ := mlid.NewTree(8, 2)
	for _, rec := range []struct {
		name string
		m    mlid.ReceptionModel
	}{{"ideal", mlid.ReceptionIdeal}, {"link", mlid.ReceptionLink}} {
		for _, s := range mlid.Schemes() {
			sn, err := mlid.Configure(tree, s)
			if err != nil {
				b.Fatal(err)
			}
			b.Run(fmt.Sprintf("%s/%s", rec.name, s.Name()), func(b *testing.B) {
				var acc float64
				for i := 0; i < b.N; i++ {
					res, err := mlid.Simulate(mlid.SimConfig{
						Subnet:      sn,
						Pattern:     mlid.CentricTraffic(tree.Nodes(), 0, 0.5),
						OfferedLoad: 0.5,
						Reception:   rec.m,
						WarmupNs:    20_000,
						MeasureNs:   60_000,
						Seed:        12,
					})
					if err != nil {
						b.Fatal(err)
					}
					acc = res.Accepted
				}
				b.ReportMetric(acc, "accepted_Bns")
			})
		}
	}
}

// BenchmarkAblationPathSelect contrasts the paper's rank-based path
// selection against an oblivious per-packet random offset, on a permutation
// where rank selection is perfectly regular.
func BenchmarkAblationPathSelect(b *testing.B) {
	tree, _ := mlid.NewTree(8, 3)
	sn, err := mlid.Configure(tree, mlid.MLID())
	if err != nil {
		b.Fatal(err)
	}
	pat, err := mlid.PatternByName("bitcomplement", tree.Nodes(), 0)
	if err != nil {
		b.Fatal(err)
	}
	for _, pol := range []struct {
		name string
		p    mlid.Selector
	}{{"rank", mlid.SelectRank()}, {"random", mlid.SelectRandom()}} {
		b.Run(pol.name, func(b *testing.B) {
			var acc float64
			for i := 0; i < b.N; i++ {
				res, err := mlid.Simulate(mlid.SimConfig{
					Subnet:      sn,
					Pattern:     pat,
					OfferedLoad: 0.7,
					PathSelect:  pol.p,
					WarmupNs:    20_000,
					MeasureNs:   60_000,
					Seed:        13,
				})
				if err != nil {
					b.Fatal(err)
				}
				acc = res.Accepted
			}
			b.ReportMetric(acc, "accepted_Bns")
		})
	}
}

// BenchmarkAblationVLPolicy contrasts round-robin VL distribution with the
// destination-pinned DLID mapping under the hotspot, per scheme.
func BenchmarkAblationVLPolicy(b *testing.B) {
	tree, _ := mlid.NewTree(16, 2)
	for _, pol := range []struct {
		name string
		p    mlid.VLPolicy
	}{{"roundrobin", mlid.VLRoundRobin}, {"bydlid", mlid.VLByDLID}} {
		for _, s := range mlid.Schemes() {
			sn, err := mlid.Configure(tree, s)
			if err != nil {
				b.Fatal(err)
			}
			b.Run(fmt.Sprintf("%s/%s", pol.name, s.Name()), func(b *testing.B) {
				var acc float64
				for i := 0; i < b.N; i++ {
					res, err := mlid.Simulate(mlid.SimConfig{
						Subnet:      sn,
						Pattern:     mlid.CentricTraffic(tree.Nodes(), 0, 0.5),
						DataVLs:     2,
						VLSelect:    pol.p,
						OfferedLoad: 0.5,
						WarmupNs:    20_000,
						MeasureNs:   60_000,
						Seed:        14,
					})
					if err != nil {
						b.Fatal(err)
					}
					acc = res.Accepted
				}
				b.ReportMetric(acc, "accepted_Bns")
			})
		}
	}
}

// BenchmarkRepairSubnet measures switch-level forwarding-table repair.
func BenchmarkRepairSubnet(b *testing.B) {
	tree, _ := mlid.NewTree(8, 3)
	faults := mlid.NewFaultSet()
	leaf, _ := tree.NodeAttachment(0)
	faults.FailLink(tree, leaf, tree.H())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		sn, err := mlid.Configure(tree, mlid.MLID())
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, _, err := mlid.RepairSubnet(sn, faults); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRepairIncremental measures the steady-state control-plane repair
// path: a persistent RepairState absorbing one link failure and its revival
// per iteration. Work is proportional to the dirtied switches' candidate
// entries (via the configure-time port-to-LIDs reverse index), not to the
// LID space — compare BenchmarkRepairSubnet's full scan.
func BenchmarkRepairIncremental(b *testing.B) {
	for _, net := range [][2]int{{8, 3}, {16, 2}, {32, 2}} {
		m, n := net[0], net[1]
		b.Run(fmt.Sprintf("%d-port_%d-tree", m, n), func(b *testing.B) {
			tree, err := mlid.NewTree(m, n)
			if err != nil {
				b.Fatal(err)
			}
			sn, err := mlid.Configure(tree, mlid.MLID())
			if err != nil {
				b.Fatal(err)
			}
			st := mlid.NewRepairState(sn)
			leaf, _ := tree.NodeAttachment(0)
			down := [][2]int32{{int32(leaf), int32(tree.H())}}
			fs := mlid.NewFaultSet()
			fs.FailLink(tree, leaf, tree.H())
			none := mlid.NewFaultSet()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := st.RepairIncremental(fs, st.DirtySwitches(nil, down)); err != nil {
					b.Fatal(err)
				}
				if _, err := st.RepairIncremental(none, st.DirtySwitches(down, nil)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSMRecovery measures trap-to-staged-delta latency over a realistic
// SM episode: eight traps arrive one by one (each growing the dead-link
// set), then the links revive. The incremental variant is the simulator's
// live path — a persistent RepairState evolved per trap; fullscan replicates
// the pre-incremental algorithm (clone every table, repair from scratch,
// diff the whole LID space against the previous shadow), the O(switches x
// LID-space) cost the rewrite removed.
func BenchmarkSMRecovery(b *testing.B) {
	for _, net := range [][2]int{{8, 3}, {16, 2}, {32, 2}} {
		m, n := net[0], net[1]
		tree, err := mlid.NewTree(m, n)
		if err != nil {
			b.Fatal(err)
		}
		sn, err := mlid.Configure(tree, mlid.MLID())
		if err != nil {
			b.Fatal(err)
		}
		// Eight links on distinct leaves, failed cumulatively, then all
		// revived: the dead-set views one episode steps through.
		links := make([][2]int32, 8)
		stride := tree.Nodes() / 8
		for i := range links {
			leaf, _ := tree.NodeAttachment(mlid.NodeID(i * stride))
			links[i] = [2]int32{int32(leaf), int32(tree.H())}
		}
		views := make([][][2]int32, 0, len(links)+1)
		for i := 1; i <= len(links); i++ {
			views = append(views, links[:i])
		}
		views = append(views, nil)
		faultsOf := func(view [][2]int32) *mlid.FaultSet {
			fs := mlid.NewFaultSet()
			for _, e := range view {
				fs.FailLink(tree, mlid.SwitchID(e[0]), int(e[1]))
			}
			return fs
		}
		name := fmt.Sprintf("%d-port_%d-tree", m, n)
		b.Run(name+"/incremental", func(b *testing.B) {
			st := mlid.NewRepairState(sn)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var prev [][2]int32
				for _, view := range views {
					if _, err := st.RepairIncremental(faultsOf(view), st.DirtySwitches(prev, view)); err != nil {
						b.Fatal(err)
					}
					prev = view
				}
			}
		})
		b.Run(name+"/fullscan", func(b *testing.B) {
			diffs := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				shadow := make([]*mlid.LFT, len(sn.LFTs))
				copy(shadow, sn.LFTs)
				for _, view := range views {
					work := &mlid.Subnet{Tree: sn.Tree, Engine: sn.Engine, Endports: sn.Endports,
						LFTs: make([]*mlid.LFT, len(sn.LFTs))}
					for s, l := range sn.LFTs {
						work.LFTs[s] = l.Clone()
					}
					if _, _, err := mlid.RepairSubnet(work, faultsOf(view)); err != nil {
						b.Fatal(err)
					}
					for s, l := range work.LFTs {
						old := shadow[s]
						for lid := 1; lid < l.Size(); lid++ {
							if old.Port(mlid.LID(lid)) != l.Port(mlid.LID(lid)) {
								diffs++
							}
						}
					}
					shadow = work.LFTs
				}
			}
			if diffs < 0 {
				b.Fatal("impossible")
			}
		})
	}
}

// BenchmarkBatchGather measures the all-to-one collective's makespan per
// scheme — the paper's congestion scenario as a closed workload.
func BenchmarkBatchGather(b *testing.B) {
	tree, _ := mlid.NewTree(8, 2)
	for _, s := range mlid.Schemes() {
		sn, err := mlid.Configure(tree, s)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(s.Name(), func(b *testing.B) {
			var makespan int64
			for i := 0; i < b.N; i++ {
				res, err := mlid.SimulateBatch(mlid.BatchConfig{
					Subnet:   sn,
					Messages: mlid.GatherMessages(tree, 0, 4096),
					Seed:     1,
				})
				if err != nil {
					b.Fatal(err)
				}
				makespan = res.MakespanNs
			}
			b.ReportMetric(float64(makespan), "makespan_ns")
		})
	}
}

// BenchmarkBatchAllToAll measures the personalized exchange's makespan.
func BenchmarkBatchAllToAll(b *testing.B) {
	tree, _ := mlid.NewTree(8, 2)
	for _, s := range mlid.Schemes() {
		sn, err := mlid.Configure(tree, s)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(s.Name(), func(b *testing.B) {
			var makespan int64
			for i := 0; i < b.N; i++ {
				res, err := mlid.SimulateBatch(mlid.BatchConfig{
					Subnet:   sn,
					Messages: mlid.AllToAllMessages(tree, 1024),
					Seed:     1,
				})
				if err != nil {
					b.Fatal(err)
				}
				makespan = res.MakespanNs
			}
			b.ReportMetric(float64(makespan), "makespan_ns")
		})
	}
}

// BenchmarkFaultReroute measures LMC-multipath failover path selection under
// injected faults (experiment EX-E).
func BenchmarkFaultReroute(b *testing.B) {
	tree, _ := mlid.NewTree(8, 3)
	faults := mlid.NewFaultSet()
	// Fail the canonical first ascending hop of node 0 -> far node.
	far := mlid.NodeID(tree.Nodes() - 1)
	p, err := mlid.Trace(tree, mlid.MLID(), 0, far)
	if err != nil {
		b.Fatal(err)
	}
	faults.FailLink(tree, p.Hops[0].Switch, p.Hops[0].OutPort)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, ok := mlid.SelectDLID(tree, mlid.MLID(), 0, far, faults); !ok {
			b.Fatal("no surviving path")
		}
	}
}
