// Reliability: the reliable end-to-end transport riding through a permanent
// link failure. With SimConfig.Transport set, every packet carries a
// sequence number, receivers acknowledge (and NAK gaps) on a dedicated
// management virtual lane, and senders retransmit on timeout with
// exponential backoff. Each retransmission re-enters path selection, so the
// MLID scheme retries a lost packet on a *different*, fault-avoiding LID,
// while the single-LID baseline can only hammer the one path it has.
//
// The accounting is exact: after the drain window,
//
//	generated = delivered + failed + in flight
//
// holds for both schemes — no packet is ever lost silently. The contrast is
// in how they get there: MLID recovers every drop on its first retry; SLID
// burns through its retry budget against broken forwarding entries.
//
// Run with:
//
//	go run ./examples/reliability
package main

import (
	"fmt"
	"log"

	"mlid"
)

func main() {
	tree, err := mlid.NewTree(4, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s; spine link (switch 2, port 2) dies permanently at t=50us\n\n", tree)

	plan := &mlid.FaultPlan{
		Faults:   []mlid.LinkFault{{Switch: 2, Port: 2, DownNs: 50_000}},
		Reselect: true,
	}
	for _, s := range []mlid.Scheme{mlid.SLID(), mlid.MLID()} {
		sn, err := mlid.Configure(tree, s)
		if err != nil {
			log.Fatal(err)
		}
		res, err := mlid.Simulate(mlid.SimConfig{
			Subnet:      sn,
			Pattern:     mlid.UniformTraffic(tree.Nodes()),
			OfferedLoad: 0.3,
			DataVLs:     2,
			WarmupNs:    20_000, MeasureNs: 100_000,
			FaultPlan: plan,
			Transport: &mlid.TransportConfig{}, // all defaults
			Seed:      21,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s:\n", s.Name())
		fmt.Printf("  generated %d = delivered %d + failed %d + in flight %d\n",
			res.TotalGenerated, res.TotalDelivered, res.Failed, res.InFlightAtEnd)
		if res.TotalGenerated != res.TotalDelivered+res.Failed+res.InFlightAtEnd {
			log.Fatal("packet conservation violated")
		}
		fmt.Printf("  dropped on the fabric: %d, retransmissions: %d, duplicate deliveries: %d\n",
			res.DroppedTotal, res.Retransmits, res.DupDeliveries)
		fmt.Printf("  acks %d, naks %d (%d control bytes on the management VL)\n",
			res.AcksSent, res.NaksSent, res.CtrlBytesSent)
		fmt.Printf("  latency mean %.0f ns, p99 %.0f ns, p999 %.0f ns\n",
			res.MeanLatencyNs, res.P99LatencyNs, res.P999LatencyNs)
		if res.LastRecoveredNs > 0 {
			fmt.Printf("  last retransmitted packet delivered at %d ns\n", res.LastRecoveredNs)
		}
		fmt.Println()
	}
	fmt.Println("Both schemes account for every packet, but MLID's retransmissions")
	fmt.Println("re-select a surviving LID and land on the first retry; SLID's can only")
	fmt.Println("repeat the broken path, so drops pile into retries — and any packet")
	fmt.Println("whose retry budget runs out is counted Failed, never lost silently.")
}
