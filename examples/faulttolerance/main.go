// Faulttolerance: an extension beyond the paper. Because the MLID scheme
// names every distinct path with its own destination LID, a source can
// route around a failed link by rewriting one field — the DLID — without
// any forwarding-table reprogramming. The single-LID baseline has no
// alternative to offer.
//
// The example fails links one by one on an 8-port 2-tree and reports how
// many (source, destination) pairs each scheme can still serve.
//
// Run with:
//
//	go run ./examples/faulttolerance
package main

import (
	"fmt"
	"log"

	"mlid"
)

func main() {
	tree, err := mlid.NewTree(8, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s\n\n", tree)

	// Fail the canonical route's first ascending link for the pair
	// (node 0 -> node 31) and watch MLID fail over.
	src, dst := mlid.NodeID(0), mlid.NodeID(tree.Nodes()-1)
	canonical, err := mlid.Trace(tree, mlid.MLID(), src, dst)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("canonical route (DLID %d): %s\n", canonical.DLID, canonical.Render(tree))

	faults := mlid.NewFaultSet()
	faults.FailLink(tree, canonical.Hops[0].Switch, canonical.Hops[0].OutPort)
	fmt.Printf("failing link %s:%d ...\n", tree.SwitchLabel(canonical.Hops[0].Switch), canonical.Hops[0].OutPort)

	if lid, path, ok := mlid.SelectDLID(tree, mlid.MLID(), src, dst, faults); ok {
		fmt.Printf("MLID fails over to DLID %d: %s\n", lid, path.Render(tree))
	} else {
		fmt.Println("MLID: no surviving path (unexpected)")
	}
	if _, _, ok := mlid.SelectDLID(tree, mlid.SLID(), src, dst, faults); !ok {
		fmt.Println("SLID: the pair's only route is cut — unreachable")
	}

	// Now the quantitative comparison: accumulate faults on ascending links
	// and count served pairs.
	fmt.Printf("\n%-28s %14s %14s\n", "accumulated faults", "MLID served", "SLID served")
	acc := mlid.NewFaultSet()
	// Fail successive up-links of leaf switches: leaf switches are the ones
	// with attached nodes; take each leaf's first up-port (abstract port
	// m/2 = 4).
	for i := 0; i < 4; i++ {
		leaf, _ := tree.NodeAttachment(mlid.NodeID(i * tree.H()))
		acc.FailLink(tree, leaf, tree.H()) // first up-port
		mServed, total, err := reach(tree, mlid.MLID(), acc)
		if err != nil {
			log.Fatal(err)
		}
		sServed, _, err := reach(tree, mlid.SLID(), acc)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%2d leaf up-link(s) down       %7d/%d  %7d/%d\n",
			i+1, mServed, total, sServed, total)
	}
	fmt.Println("\nMLID's LMC multipath keeps every pair reachable; each SLID loss is a")
	fmt.Println("pair whose single path crossed a failed link.")

	// Finally, the same failure injected *live*: the link dies while packets
	// are in flight, and the running subnet-manager model must notice, repair
	// what it can and leave the rest to source reselection. The drop counters
	// show the fate of RepairSubnet's broken entries — every packet a live
	// table steers onto the dead link is counted at DroppedAtDeadLink, never
	// silently misrouted.
	fmt.Println("\n--- live fault injection ---")
	leaf0, _ := tree.NodeAttachment(0)
	plan := &mlid.FaultPlan{
		Faults:   []mlid.LinkFault{{Switch: int32(leaf0), Port: tree.H(), DownNs: 60_000}},
		Reselect: true,
	}
	for _, s := range []mlid.Scheme{mlid.SLID(), mlid.MLID()} {
		sn, err := mlid.Configure(tree, s)
		if err != nil {
			log.Fatal(err)
		}
		res, err := mlid.Simulate(mlid.SimConfig{
			Subnet:      sn,
			Pattern:     mlid.UniformTraffic(tree.Nodes()),
			OfferedLoad: 0.3,
			WarmupNs:    30_000, MeasureNs: 120_000,
			FaultPlan: plan,
			Seed:      5,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: recovery %d ns after failure (%d staged table updates, %d entries)\n",
			s.Name(), res.RecoveryNs, res.LFTUpdates, res.LFTEntriesRewritten)
		fmt.Printf("  dropped %d (at dead link: %d broken/stale-entry, on dead link: %d in-flight)\n",
			res.DroppedTotal, res.DroppedAtDeadLink, res.DroppedOnDeadLink)
		fmt.Printf("  broken descending entries: %d, reselection reroutes: %d, last drop at %d ns\n",
			res.BrokenEntries, res.Reroutes, res.LastDropNs)
	}
	fmt.Println("\nSLID's broken entries keep dropping for the rest of the run; MLID's")
	fmt.Println("reselection steers sources onto surviving LIDs and the drops stop.")
}

// reach counts served ordered pairs under the fault set.
func reach(tree *mlid.Tree, s mlid.Scheme, faults *mlid.FaultSet) (served, total int, err error) {
	for a := 0; a < tree.Nodes(); a++ {
		for b := 0; b < tree.Nodes(); b++ {
			if a == b {
				continue
			}
			total++
			if _, _, ok := mlid.SelectDLID(tree, s, mlid.NodeID(a), mlid.NodeID(b), faults); ok {
				served++
			}
		}
	}
	return served, total, nil
}
