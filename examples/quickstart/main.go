// Quickstart: build a fat-tree InfiniBand fabric, let the subnet manager
// configure MLID routing, and measure one operating point.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"mlid"
)

func main() {
	// An 8-port 2-tree: 32 processing nodes behind 12 8-port switches.
	tree, err := mlid.NewTree(8, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(tree)

	// The subnet manager discovers the fabric, assigns every endport its
	// LID range (the MLID scheme gives each node (m/2)^(n-1) = 4 LIDs) and
	// programs every switch's linear forwarding table.
	subnet, err := mlid.Configure(tree, mlid.MLID())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("node 0 owns %s; node 31 owns %s\n",
		subnet.Endports[0], subnet.Endports[31])

	// Where does a packet from node 0 to node 31 travel? Path selection
	// picks one of node 31's LIDs by node 0's rank; the forwarding tables
	// realize the route.
	path, err := mlid.Trace(tree, mlid.MLID(), 0, 31)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("selected route (DLID %d): %s\n\n", path.DLID, path.Render(tree))

	// Simulate uniform random traffic at 40% of link rate per node.
	res, err := mlid.Simulate(mlid.SimConfig{
		Subnet:      subnet,
		Pattern:     mlid.UniformTraffic(tree.Nodes()),
		OfferedLoad: 0.4, // bytes/ns per node; 1.0 is the 4X link data rate
		Seed:        1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("offered %.2f B/ns/node -> accepted %.4f B/ns/node, mean latency %.0f ns (p99 %.0f ns)\n",
		res.OfferedLoad, res.Accepted, res.MeanLatencyNs, res.P99LatencyNs)
	fmt.Printf("%d packets delivered in the measurement window\n", res.DeliveredWindow)
}
