// Collectives: measures MPI-style collective exchanges as closed workloads —
// every message enqueued at time zero, the metric being the makespan (the
// time until the fabric drains). This is the lens an application feels:
// a checkpoint gather or an all-to-all shuffle finishes when its last
// packet lands.
//
// The gather (all-to-one) is the paper's congestion scenario as a
// collective: under SLID every packet crawls down one path into the root's
// leaf, while MLID fans the ascent across disjoint links and descends
// through all m/2 paths.
//
// Run with:
//
//	go run ./examples/collectives
package main

import (
	"fmt"
	"log"

	"mlid"
)

func main() {
	tree, err := mlid.NewTree(8, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s — collective makespans (lower is better)\n\n", tree)

	collectives := []struct {
		name string
		msgs func() []mlid.Message
	}{
		{"gather 4KiB -> node 0", func() []mlid.Message { return mlid.GatherMessages(tree, 0, 4096) }},
		{"all-to-all 1KiB", func() []mlid.Message { return mlid.AllToAllMessages(tree, 1024) }},
	}

	fmt.Printf("%-24s %14s %14s %9s\n", "collective", "SLID makespan", "MLID makespan", "speedup")
	for _, c := range collectives {
		var makespan [2]int64
		for i, scheme := range []mlid.Scheme{mlid.SLID(), mlid.MLID()} {
			subnet, err := mlid.Configure(tree, scheme)
			if err != nil {
				log.Fatal(err)
			}
			res, err := mlid.SimulateBatch(mlid.BatchConfig{
				Subnet:   subnet,
				Messages: c.msgs(),
				Seed:     1,
			})
			if err != nil {
				log.Fatal(err)
			}
			makespan[i] = res.MakespanNs
		}
		fmt.Printf("%-24s %11d ns %11d ns %8.2fx\n",
			c.name, makespan[0], makespan[1], float64(makespan[0])/float64(makespan[1]))
	}
	fmt.Println("\nThe gather speedup approaches m/2 (the number of descending paths into")
	fmt.Println("the root's leaf switch); the all-to-all is balanced under both schemes.")
}
