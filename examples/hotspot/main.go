// Hotspot: the paper's headline scenario. A cluster where every compute
// node sends half its traffic to one node — think 31 compute nodes
// checkpointing to a single I/O server — congests single-path (SLID)
// routing badly, while the MLID scheme spreads each source group's packets
// over disjoint ascending paths and distinct least common ancestors.
//
// This example sweeps the offered load under the paper's 50%-centric
// pattern for both schemes and prints the resulting operating points,
// reproducing the shape of the paper's Figures (Observation 3: MLID
// throughput is much higher than SLID's with one virtual lane).
//
// Run with:
//
//	go run ./examples/hotspot
package main

import (
	"fmt"
	"log"

	"mlid"
)

func main() {
	tree, err := mlid.NewTree(8, 2)
	if err != nil {
		log.Fatal(err)
	}
	const hotspot = 0
	fmt.Printf("%s; hotspot node %d receives 50%% of all traffic\n\n", tree, hotspot)

	// First, the static view: trace every node's route toward the hotspot
	// and count how the load piles onto links under each scheme.
	for _, scheme := range mlid.Schemes() {
		rep, err := mlid.LinkLoad(tree, scheme, mlid.AllToOne(tree, hotspot))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-5s all-to-one: max link load %.0f flows, mean %.2f\n",
			scheme.Name(), rep.Max, rep.Mean)
	}
	fmt.Println()

	// Then the dynamic view: simulate the 50%-centric pattern at rising
	// offered loads with a single virtual lane.
	loads := []float64{0.05, 0.1, 0.2, 0.3, 0.5}
	fmt.Printf("%-8s", "load")
	for _, scheme := range mlid.Schemes() {
		fmt.Printf("  %13s accepted/latency", scheme.Name())
	}
	fmt.Println()
	for _, load := range loads {
		fmt.Printf("%-8.2f", load)
		for _, scheme := range mlid.Schemes() {
			subnet, err := mlid.Configure(tree, scheme)
			if err != nil {
				log.Fatal(err)
			}
			res, err := mlid.Simulate(mlid.SimConfig{
				Subnet:      subnet,
				Pattern:     mlid.CentricTraffic(tree.Nodes(), hotspot, 0.5),
				OfferedLoad: load,
				DataVLs:     1,
				WarmupNs:    100_000,
				MeasureNs:   300_000,
				Seed:        7,
			})
			if err != nil {
				log.Fatal(err)
			}
			mark := " "
			if res.Saturated {
				mark = "*"
			}
			fmt.Printf("  %13.4f%s / %8.0f ns", res.Accepted, mark, res.MeanLatencyNs)
		}
		fmt.Println()
	}
	fmt.Println("\n(* = saturated: accepted fell below offered)")
	fmt.Println("MLID keeps accepting traffic well past the load where SLID's single")
	fmt.Println("path into the hotspot leaf has already collapsed.")
}
