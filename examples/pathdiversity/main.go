// Pathdiversity: reproduces the paper's worked examples on the 4-port
// 3-tree — the multiple-LID assignment of Figure 10, the group path
// selection of Figure 11 (the four members of gcpg(0,1) reach P(100)
// through four different roots over disjoint ascending links), and the
// forwarding-equation route of Section 4.3.
//
// Run with:
//
//	go run ./examples/pathdiversity
package main

import (
	"fmt"
	"log"

	"mlid"
)

func main() {
	tree, err := mlid.NewTree(4, 3)
	if err != nil {
		log.Fatal(err)
	}
	scheme := mlid.MLID()
	subnet, err := mlid.Configure(tree, scheme)
	if err != nil {
		log.Fatal(err)
	}

	// Figure 10: every node's base LID and LID set (LMC = 2 -> 4 LIDs).
	fmt.Printf("Figure 10 — LID assignment on %s (LMC %d):\n", tree, scheme.LMC(tree))
	for p := 0; p < tree.Nodes(); p++ {
		fmt.Printf("  %-8s %s\n", tree.NodeLabel(mlid.NodeID(p)), subnet.Endports[p])
	}

	// Figure 11: the four members of gcpg(0, 1) = {P(000), P(001), P(010),
	// P(011)} each select a different LID of P(100) and climb to a
	// different root.
	dst := mlid.NodeID(4) // P(100)
	fmt.Printf("\nFigure 11 — group path selection toward %s:\n", tree.NodeLabel(dst))
	for src := mlid.NodeID(0); src < 4; src++ {
		path, err := mlid.Trace(tree, scheme, src, dst)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s uses DLID %d: %s\n", tree.NodeLabel(src), path.DLID, path.Render(tree))
	}

	// Section 4.3: all LMC-selectable routes between a maximally distant
	// pair — one per least common ancestor.
	src := mlid.NodeID(0)
	all, err := mlid.AllPaths(tree, scheme, src, dst)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nAll %d selectable routes %s -> %s (paper: (m/2)^(n-1-alpha) = %d):\n",
		len(all), tree.NodeLabel(src), tree.NodeLabel(dst), tree.PathCount(src, dst))
	for _, p := range all {
		fmt.Printf("  DLID %-4d %s\n", p.DLID, p.Render(tree))
	}

	// The payoff, statically: under all-to-one traffic MLID's ascending
	// links each carry one flow, while SLID piles a whole leaf group onto
	// one port (the paper's Figure 9 congestion).
	fmt.Printf("\nStatic all-to-one load toward %s:\n", tree.NodeLabel(dst))
	for _, s := range mlid.Schemes() {
		rep, err := mlid.LinkLoad(tree, s, mlid.AllToOne(tree, dst))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-5s hottest link carries %.0f flows (mean %.2f)\n", s.Name(), rep.Max, rep.Mean)
	}
}
