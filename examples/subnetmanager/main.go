// Subnetmanager: brings a fabric up the way a real InfiniBand subnet
// manager does — with zero out-of-band knowledge. The SM hosted at node 0
// explores the fabric through directed-route NodeInfo probes (learning only
// GUIDs, port counts and link endpoints), recognizes the discovered graph
// as an m-port n-tree from its edges' port numbers alone, assigns every
// endport its LID range over PortInfo SMPs, and programs every switch's
// linear forwarding table in 64-entry blocks.
//
// The result is compared against the oracle subnet manager (which reads the
// topology object directly): the two must agree entry for entry.
//
// Run with:
//
//	go run ./examples/subnetmanager
package main

import (
	"fmt"
	"log"
	"reflect"

	"mlid"
)

func main() {
	tree, err := mlid.NewTree(8, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("physical fabric: %s\n\n", tree)

	// Bring-up through the management plane only.
	fmt.Println("MAD subnet manager at node 0: explore -> recognize -> address -> program ...")
	madSubnet, err := mlid.ConfigureViaMAD(tree, mlid.MLID(), 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recognized FT(%d,%d): %d nodes, %d switches, LID space %d\n",
		madSubnet.Tree.M(), madSubnet.Tree.N(),
		madSubnet.Tree.Nodes(), madSubnet.Tree.Switches(), madSubnet.LIDSpace())

	// The oracle SM computes the same subnet from the topology object.
	oracle, err := mlid.Configure(tree, mlid.MLID())
	if err != nil {
		log.Fatal(err)
	}
	if !reflect.DeepEqual(madSubnet.Endports, oracle.Endports) {
		log.Fatal("endport LID ranges differ from the oracle's")
	}
	for s := range madSubnet.LFTs {
		if !reflect.DeepEqual(madSubnet.LFTs[s].Entries(), oracle.LFTs[s].Entries()) {
			log.Fatalf("switch %d forwarding table differs from the oracle's", s)
		}
	}
	fmt.Println("verified: MAD-programmed subnet is identical to the oracle subnet")

	// And it routes: drive a quick simulation over the MAD-built subnet.
	res, err := mlid.Simulate(mlid.SimConfig{
		Subnet:      madSubnet,
		Pattern:     mlid.UniformTraffic(madSubnet.Tree.Nodes()),
		OfferedLoad: 0.3,
		Seed:        1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated on the MAD subnet: accepted %.4f B/ns/node, mean latency %.0f ns\n",
		res.Accepted, res.MeanLatencyNs)
}
