// Package mlid is a Go reproduction of "A Multiple LID Routing Scheme for
// Fat-Tree-Based InfiniBand Networks" (Xuan-Yi Lin, Yeh-Ching Chung and
// Tai-Yi Huang, IPDPS 2004).
//
// The library provides, as its public surface:
//
//   - m-port n-tree fat-tree topologies, FT(m, n), built from fixed-arity
//     m-port switches (NewTree and the Tree methods);
//   - the paper's Multiple LID (MLID) routing scheme and its Single LID
//     (SLID) baseline: node addressing via the InfiniBand LMC mechanism,
//     source-rank path selection, and closed-form forwarding-table
//     assignment (MLID, SLID, Trace, AllPaths);
//   - an InfiniBand subnet model with a subnet manager that discovers the
//     fabric, assigns LIDs and programs every linear forwarding table
//     (Configure);
//   - a discrete-event InfiniBand network simulator with virtual lanes,
//     virtual cut-through crossbar switches and credit-based link-level
//     flow control (Simulate);
//   - the paper's evaluation harness: Table 1 and the eight
//     latency-vs-accepted-traffic figures (EvalFigures, EvalTable1).
//
// A minimal end-to-end use:
//
//	tree, _ := mlid.NewTree(8, 2)                     // 32 nodes, 12 switches
//	subnet, _ := mlid.Configure(tree, mlid.MLID())    // SM assigns LIDs + LFTs
//	res, _ := mlid.Simulate(mlid.SimConfig{
//		Subnet:      subnet,
//		Pattern:     mlid.UniformTraffic(tree.Nodes()),
//		OfferedLoad: 0.4, // bytes/ns per node
//	})
//	fmt.Println(res.Accepted, res.MeanLatencyNs)
//
// See DESIGN.md for the system inventory and the reconstruction notes, and
// EXPERIMENTS.md for paper-vs-measured results.
package mlid

import (
	"mlid/internal/core"
	"mlid/internal/experiment"
	"mlid/internal/ib"
	"mlid/internal/sim"
	"mlid/internal/sm"
	"mlid/internal/stats"
	"mlid/internal/topology"
	"mlid/internal/traffic"
)

// Tree is an m-port n-tree fat-tree, FT(m, n). See NewTree.
type Tree = topology.Tree

// NodeID identifies a processing node; it equals the node's PID.
type NodeID = topology.NodeID

// SwitchID identifies a communication switch.
type SwitchID = topology.SwitchID

// NewTree constructs FT(m, n): 2*(m/2)^n processing nodes interconnected by
// (2n-1)*(m/2)^(n-1) m-port switches. m must be a power of two >= 4; n >= 1.
func NewTree(m, n int) (*Tree, error) { return topology.New(m, n) }

// Scheme is a routing scheme: node addressing, path selection and
// forwarding-table assignment. MLID and SLID construct the two schemes the
// paper evaluates.
type Scheme = core.Scheme

// MLID returns the paper's Multiple LID routing scheme: every node owns
// (m/2)^(n-1) LIDs, one per distinct ascending path, and sources select the
// destination LID by their own rank so that group traffic climbs over
// disjoint links.
func MLID() Scheme { return core.NewMLID() }

// SLID returns the single-LID baseline scheme.
func SLID() Scheme { return core.NewSLID() }

// SchemeByName resolves "MLID" or "SLID" (case-insensitive).
func SchemeByName(name string) (Scheme, error) { return core.ByName(name) }

// Schemes returns both schemes, MLID first.
func Schemes() []Scheme { return core.Schemes() }

// LID is an InfiniBand local identifier.
type LID = ib.LID

// Subnet is a configured InfiniBand subnet: LID ranges for every endport and
// a linear forwarding table in every switch.
type Subnet = ib.Subnet

// LFT is one switch's linear forwarding table (DLID to physical port).
type LFT = ib.LFT

// ErrLIDSpaceExhausted is returned (wrapped) by Configure when the scheme's
// LID plan does not fit the 16-bit LID space — e.g. MLID on FT(16,3), which
// needs 65,537 LIDs. Callers match it with errors.Is and suggest the SLID
// scheme or a smaller tree.
var ErrLIDSpaceExhausted = ib.ErrLIDSpaceExhausted

// Configure runs the subnet manager against the fabric: discovery, LID
// assignment with the scheme's LMC, and forwarding-table programming.
func Configure(t *Tree, s Scheme) (*Subnet, error) {
	return (&ib.SubnetManager{Tree: t, Engine: s}).Configure()
}

// ConfigureViaMAD brings the fabric up through the management plane instead
// of the topology oracle: the subnet manager hosted at the origin node
// explores the fabric with directed-route NodeInfo probes, recognizes the
// m-port n-tree from the discovered port numbers, assigns LIDs with
// PortInfo SMPs and programs forwarding tables block by block — producing a
// subnet provably equal to Configure's using only what a real InfiniBand SM
// can see.
func ConfigureViaMAD(t *Tree, s Scheme, origin NodeID) (*Subnet, error) {
	m := &sm.MADSubnetManager{Fabric: ib.NewSMAFabric(t), Origin: origin, Engine: s}
	return m.Configure()
}

// ExportSubnet serializes a configured subnet (fabric parameters, LID
// ranges, forwarding tables) for offline inspection or re-import.
func ExportSubnet(sn *Subnet) ([]byte, error) { return sn.Export() }

// ImportSubnet reconstructs a subnet from ExportSubnet's output; the stored
// scheme name selects the engine.
func ImportSubnet(data []byte) (*Subnet, error) {
	// Peek the scheme name by trying both engines.
	for _, s := range core.Schemes() {
		if sn, err := ib.Import(data, s); err == nil {
			return sn, nil
		}
	}
	// Re-run with MLID to surface the real error.
	return ib.Import(data, core.NewMLID())
}

// Path is a fully resolved route from a source node to a destination LID's
// owner.
type Path = core.Path

// Trace resolves the scheme's selected path from src to dst, verifying the
// forwarding tables deliver it.
func Trace(t *Tree, s Scheme, src, dst NodeID) (Path, error) {
	return core.Trace(t, s, src, dst)
}

// AllPaths enumerates the distinct routes a source can name to a destination
// through the destination's LID set.
func AllPaths(t *Tree, s Scheme, src, dst NodeID) ([]Path, error) {
	return core.AllPaths(t, s, src, dst)
}

// Flow, LoadReport and LinkLoad expose the static per-link load analysis.
type (
	// Flow is one traffic-matrix entry for LinkLoad.
	Flow = core.Flow
	// LoadReport summarizes per-link loads induced by a traffic matrix.
	LoadReport = core.LoadReport
)

// LinkLoad traces every flow under the scheme and accumulates directed link
// loads — the paper's congestion argument without simulation.
func LinkLoad(t *Tree, s Scheme, flows []Flow) (*LoadReport, error) {
	return core.LinkLoad(t, s, flows)
}

// AllToOne builds the all-sources-to-one-destination traffic matrix.
func AllToOne(t *Tree, dst NodeID) []Flow { return core.AllToOne(t, dst) }

// PathPlan is a profile-guided path assignment produced by OptimizePaths;
// feed its DLID method to SimConfig.DLIDFunc or BatchConfig.DLIDFunc.
type PathPlan = core.PathPlan

// OptimizePaths computes, for a known traffic matrix, the MLID LID offsets
// that minimize the maximum link load (greedy min-max over shortest paths)
// — an extension of the paper's rank-based selection for skewed workloads.
func OptimizePaths(t *Tree, flows []Flow) (*PathPlan, error) {
	return core.OptimizePaths(t, core.NewMLID(), flows)
}

// FaultSet records failed links for fault-avoiding path selection.
type FaultSet = core.FaultSet

// NewFaultSet returns an empty fault set.
func NewFaultSet() *FaultSet { return core.NewFaultSet() }

// SelectDLID picks a destination LID whose path avoids the fault set,
// exercising LMC multipath failover (an extension beyond the paper).
func SelectDLID(t *Tree, s Scheme, src, dst NodeID, faults *FaultSet) (LID, Path, bool) {
	return core.SelectDLID(t, s, src, dst, faults)
}

// BrokenEntry names a forwarding entry RepairSubnet could not fix locally.
type BrokenEntry = core.BrokenEntry

// RepairSubnet rewrites forwarding tables around failed links, remapping
// ascending entries to live up-ports (always safe in an m-port n-tree) and
// reporting descending entries, which have no local alternative, as broken.
func RepairSubnet(sn *Subnet, faults *FaultSet) (remapped int, broken []BrokenEntry, err error) {
	return core.RepairSubnet(sn, faults)
}

// RepairEntry is one remapped forwarding entry of an incremental repair.
type RepairEntry = core.RepairEntry

// SwitchDelta is one switch's forwarding-table delta from RepairIncremental.
type SwitchDelta = core.SwitchDelta

// RepairState is the persistent incremental-repair state over one subnet: a
// configure-time port-to-LIDs reverse index plus the current repair overlay.
// RepairIncremental recomputes only the switches a fault-set change dirties
// and returns the exact entry deltas, making per-event repair proportional
// to the change rather than to the LID space — the control-plane hot path
// the simulator's subnet managers run on.
type RepairState = core.RepairState

// NewRepairState builds incremental-repair state (including the reverse
// index) over a configured subnet's pristine tables.
func NewRepairState(sn *Subnet) *RepairState { return core.NewRepairState(sn) }

// TraceSubnet walks the subnet's programmed forwarding tables from src for
// the given DLID — the ground truth for repaired or modified tables.
func TraceSubnet(sn *Subnet, src NodeID, dlid LID) (Path, error) {
	return core.TraceSubnet(sn, src, dlid)
}

// DeadlockReport is the outcome of a channel-dependency analysis.
type DeadlockReport = core.DeadlockReport

// CheckDeadlockFree builds the exact channel-dependency graph induced by
// the subnet's forwarding tables and searches it for cycles (Dally-Seitz).
func CheckDeadlockFree(sn *Subnet) (*DeadlockReport, error) {
	return core.CheckDeadlockFree(sn)
}

// FamilyStats summarizes an interconnect family instance for hardware-cost
// comparison; see Tree.FamilyStats and Tree.CompareWithKaryNTree.
type FamilyStats = topology.FamilyStats

// KaryNTreeStats computes the metrics of the k-ary n-tree (the paper's
// reference [10]) analytically.
func KaryNTreeStats(k, n int) (FamilyStats, error) { return topology.KaryNTreeStats(k, n) }

// FormatFamilyComparison renders family stats side by side.
func FormatFamilyComparison(stats ...FamilyStats) string {
	return topology.FormatComparison(stats...)
}

// Pattern selects packet destinations during simulation.
type Pattern = traffic.Pattern

// UniformTraffic returns the paper's uniform pattern over the node count.
func UniformTraffic(nodes int) Pattern { return traffic.Uniform{Nodes: nodes} }

// CentricTraffic returns the paper's hotspot pattern: each packet goes to
// the hotspot with the given probability (the paper uses 0.5), else to a
// uniformly random node.
func CentricTraffic(nodes, hotspot int, fraction float64) Pattern {
	return traffic.Centric{Nodes: nodes, Hotspot: hotspot, Fraction: fraction}
}

// MultiHotspotTraffic spreads the concentrated fraction over several
// hotspot destinations.
func MultiHotspotTraffic(nodes int, hotspots []int, fraction float64) Pattern {
	return traffic.MultiHotspot{Nodes: nodes, Hotspots: hotspots, Fraction: fraction}
}

// LocalTraffic biases destinations toward the source's own leaf switch.
func LocalTraffic(nodes, leafSize int, locality float64) Pattern {
	return traffic.Local{Nodes: nodes, LeafSize: leafSize, Locality: locality}
}

// PatternByName resolves "uniform", "centric", "bitcomplement",
// "bitreversal" or "shift".
func PatternByName(name string, nodes, hotspot int) (Pattern, error) {
	return traffic.ByName(name, nodes, hotspot)
}

// Simulation types, re-exported from the simulator.
type (
	// SimConfig configures one simulation run; zero-valued optional fields
	// take the paper's model constants.
	SimConfig = sim.Config
	// SimResult reports one run's measurements.
	SimResult = sim.Result
	// ReceptionModel selects how destinations consume packets.
	ReceptionModel = sim.ReceptionModel
	// Selector is the pluggable source-side path-selection policy
	// (SimConfig.PathSelect); see SelectorByName for the built-in family.
	Selector = sim.Selector
	// SelectContext is the per-packet input a Selector chooses from.
	SelectContext = sim.SelectContext
	// CongestionView is the first-hop port occupancy/credit window a
	// Selector may consult.
	CongestionView = sim.CongestionView
	// VLPolicy selects the source-side virtual-lane mapping.
	VLPolicy = sim.VLPolicy
	// SwitchingMode selects the switch forwarding discipline.
	SwitchingMode = sim.SwitchingMode
)

// Reception models (see DESIGN.md, "Reception model").
const (
	// ReceptionIdeal consumes packets at the destination leaf switch — the
	// paper-faithful default.
	ReceptionIdeal = sim.ReceptionIdeal
	// ReceptionLink models the terminal link like any other shared link.
	ReceptionLink = sim.ReceptionLink
)

// Path-selection policies (SimConfig.PathSelect; nil defaults to SelectRank).

// SelectRank is the paper's rank-based selection (default).
func SelectRank() Selector { return sim.SelectRank() }

// SelectRandom draws a random usable LID offset per packet (ablation).
func SelectRandom() Selector { return sim.SelectRandom() }

// SelectFlowSpray pins each flow to one randomly drawn LID at flow start.
func SelectFlowSpray() Selector { return sim.SelectFlowSpray() }

// SelectAdaptive picks the least-occupied upward LID with hysteresis.
func SelectAdaptive() Selector { return sim.SelectAdaptive() }

// SelectPktSpray sprays every packet round-robin over the usable LIDs.
func SelectPktSpray() Selector { return sim.SelectPktSpray() }

// SelectorByName resolves "rank", "random", "flowspray", "adaptive" or
// "pktspray".
func SelectorByName(name string) (Selector, error) { return sim.SelectorByName(name) }

// SelectorNames lists the built-in selectors, sorted.
func SelectorNames() []string { return sim.SelectorNames() }

// Virtual-lane mapping policies.
const (
	// VLRoundRobin distributes packets over data VLs per source (default).
	VLRoundRobin = sim.VLRoundRobin
	// VLByDLID pins packets to VL = DLID mod #VLs (ablation).
	VLByDLID = sim.VLByDLID
)

// Switching modes.
const (
	// SwitchingVCT is virtual cut-through, the paper's model (default).
	SwitchingVCT = sim.SwitchingVCT
	// SwitchingSAF is store-and-forward (ablation).
	SwitchingSAF = sim.SwitchingSAF
)

// Simulate executes one discrete-event simulation run.
func Simulate(cfg SimConfig) (SimResult, error) { return sim.Run(cfg) }

// Live fault-injection types (SimConfig.FaultPlan): link failures scheduled
// on the simulation clock, with a subnet-manager recovery model (trap
// latency, staged forwarding-table updates, fault-avoiding reselection).
type (
	// FaultPlan schedules link failures inside a running simulation.
	FaultPlan = sim.FaultPlan
	// LinkFault is one scheduled bidirectional link outage.
	LinkFault = sim.LinkFault
	// SwitchFault is one scheduled whole-switch outage: every port goes
	// down atomically at the same instant.
	SwitchFault = sim.SwitchFault
	// SimSeriesPoint is one time bin of a run's delivery/drop series.
	SimSeriesPoint = sim.SeriesPoint
	// TransportConfig enables the reliable end-to-end transport
	// (SimConfig.Transport): PSN sequencing, ACK/NAK on a management VL,
	// and timeout retransmission with exponential backoff.
	TransportConfig = sim.TransportConfig
	// InBandSMConfig (FaultPlan.InBandSM) replaces the oracle subnet
	// manager with an in-band one: traps and LFT-update SMPs travel the
	// management VL through the live forwarding tables (and are lost when
	// their path crosses a dead link), a periodic sweep diffs discovered
	// port state against the SM's view, SMP transactions retry with capped
	// exponential backoff, a standby SM takes over when the master's
	// attachment dies, and unreachable partitions degrade gracefully.
	InBandSMConfig = sim.InBandSMConfig
)

// Batch (closed-workload) simulation types.
type (
	// BatchConfig describes a closed workload: all messages enqueued at
	// time zero, measured by makespan.
	BatchConfig = sim.BatchConfig
	// BatchResult reports a closed-workload run.
	BatchResult = sim.BatchResult
	// Message is one batch transfer.
	Message = sim.Message
)

// SimulateBatch runs a closed workload (e.g. a collective exchange) until
// the fabric drains and returns its makespan.
func SimulateBatch(bc BatchConfig) (BatchResult, error) { return sim.RunBatch(bc) }

// AllToAllMessages builds the staggered all-to-all personalized exchange.
func AllToAllMessages(t *Tree, bytesPer int) []Message { return sim.AllToAll(t, bytesPer) }

// GatherMessages builds the all-to-one collective toward root.
func GatherMessages(t *Tree, root NodeID, bytesPer int) []Message {
	return sim.Gather(t, root, bytesPer)
}

// Evaluation harness types.
type (
	// EvalNetwork names one m-port n-tree configuration.
	EvalNetwork = experiment.Network
	// EvalFigureSpec describes one latency-vs-accepted-traffic figure.
	EvalFigureSpec = experiment.FigureSpec
	// EvalFigure is a completed figure with measured curves.
	EvalFigure = experiment.Figure
	// EvalTable1Row is one row of the reproduced Table 1.
	EvalTable1Row = experiment.Table1Row
	// Curve is a labelled series of measured operating points.
	Curve = stats.Curve
	// CurvePoint is one measured operating point.
	CurvePoint = stats.Point
	// Histogram is a log-scaled latency histogram usable as a
	// SimConfig.LatencyHist sink.
	Histogram = stats.Histogram
	// PortStat summarizes one directed link's traffic over a run.
	PortStat = sim.PortStat
)

// NewHistogram returns a latency histogram whose first bucket starts at
// base nanoseconds, with the given number of doubling buckets.
func NewHistogram(base float64, buckets int) *Histogram {
	return stats.NewHistogram(base, buckets)
}

// EvalFigures returns the specs of the paper's eight evaluation figures at
// full fidelity; call Run on a spec to execute its sweep.
func EvalFigures() []EvalFigureSpec { return experiment.Figures() }

// EvalQuickFigures returns reduced-cost variants of the eight figures.
func EvalQuickFigures() []EvalFigureSpec { return experiment.QuickFigures() }

// EvalFigureByID finds a figure spec by ID ("F3") or short name ("u-16x2").
func EvalFigureByID(name string) (EvalFigureSpec, error) { return experiment.FigureByID(name) }

// EvalTable1 computes the network-configuration table for the given
// networks (use EvalNetworks() for the paper's four).
func EvalTable1(nets []EvalNetwork) ([]EvalTable1Row, error) { return experiment.Table1(nets) }

// EvalNetworks returns the four evaluation network sizes.
func EvalNetworks() []EvalNetwork { return experiment.PaperNetworks() }

// Recovery-transient study types: how each scheme rides through a live link
// failure (see SimConfig.FaultPlan and EXPERIMENTS.md).
type (
	// EvalRecoverySpec configures the recovery-transient study.
	EvalRecoverySpec = experiment.RecoverySpec
	// EvalRecoveryRow is one (scheme, VL count) outcome of the study.
	EvalRecoveryRow = experiment.RecoveryRow
)

// EvalRecoverySpecDefault returns the full-fidelity recovery study spec.
func EvalRecoverySpecDefault() EvalRecoverySpec { return experiment.RecoveryStudySpec() }

// EvalRecoverySpecQuick returns the reduced-cost recovery study spec.
func EvalRecoverySpecQuick() EvalRecoverySpec { return experiment.QuickRecoverySpec() }

// EvalRecoveryStudy runs the recovery transient for both schemes across the
// spec's VL counts.
func EvalRecoveryStudy(spec EvalRecoverySpec) ([]EvalRecoveryRow, error) {
	return experiment.RecoveryStudy(spec)
}

// FormatRecovery renders recovery rows as a markdown table.
func FormatRecovery(rows []EvalRecoveryRow) string { return experiment.FormatRecovery(rows) }

// RecoveryCSV renders recovery rows in long form.
func RecoveryCSV(rows []EvalRecoveryRow) string { return experiment.RecoveryCSV(rows) }

// RecoverySeriesCSV renders every recovery row's per-interval transient —
// the recovery-tail curves — in long form.
func RecoverySeriesCSV(rows []EvalRecoveryRow) string { return experiment.RecoverySeriesCSV(rows) }

// Chaos-campaign types: seeded link-flap and switch-kill schedules run with
// the reliable transport on, SLID versus MLID on identical schedules (see
// SimConfig.Transport and EXPERIMENTS.md).
type (
	// EvalChaosSpec configures a seeded chaos campaign.
	EvalChaosSpec = experiment.ChaosSpec
	// EvalChaosRow is one (scheme, fault rate) campaign outcome.
	EvalChaosRow = experiment.ChaosRow
)

// EvalChaosSpecDefault returns the full-fidelity chaos campaign spec.
func EvalChaosSpecDefault() EvalChaosSpec { return experiment.ChaosStudySpec() }

// EvalChaosSpecQuick returns the reduced-cost chaos campaign spec.
func EvalChaosSpecQuick() EvalChaosSpec { return experiment.QuickChaosSpec() }

// EvalChaosStudy runs the campaign for both schemes across the spec's fault
// rates, each pair on an identical seeded schedule, and verifies packet
// conservation (generated = delivered + failed + in flight) for every run.
func EvalChaosStudy(spec EvalChaosSpec) ([]EvalChaosRow, error) {
	return experiment.ChaosStudy(spec)
}

// FormatChaos renders chaos rows as a markdown table.
func FormatChaos(rows []EvalChaosRow) string { return experiment.FormatChaos(rows) }

// ChaosCSV renders chaos rows in long form.
func ChaosCSV(rows []EvalChaosRow) string { return experiment.ChaosCSV(rows) }

// Path-selection family study types: every pluggable selector (SelectRank,
// SelectRandom, SelectFlowSpray, SelectAdaptive, SelectPktSpray) over the
// same MLID fabric on policy-separating workloads, with an optional
// degraded-fabric axis (see SimConfig.PathSelect and EXPERIMENTS.md).
type (
	// EvalAdaptiveSpec configures the path-selection family study.
	EvalAdaptiveSpec = experiment.AdaptiveSpec
	// EvalAdaptiveRow is one (workload, selector, faulted?) measurement.
	EvalAdaptiveRow = experiment.AdaptiveRow
)

// EvalAdaptiveSpecDefault returns the full-fidelity family study spec.
func EvalAdaptiveSpecDefault() EvalAdaptiveSpec { return experiment.AdaptiveStudySpec() }

// EvalAdaptiveSpecQuick returns the reduced-cost family study spec.
func EvalAdaptiveSpecQuick() EvalAdaptiveSpec { return experiment.QuickAdaptiveSpec() }

// EvalAdaptiveStudy runs the family study: every selector of a (workload,
// variant) block sees the identical subnet, traffic, seed, and fault
// schedule, and the runner asserts packet conservation for every run.
func EvalAdaptiveStudy(spec EvalAdaptiveSpec) ([]EvalAdaptiveRow, error) {
	return experiment.AdaptiveStudy(spec)
}

// FormatAdaptive renders family-study rows as a markdown table.
func FormatAdaptive(rows []EvalAdaptiveRow) string { return experiment.FormatAdaptive(rows) }

// AdaptiveCSV renders family-study rows in long form.
func AdaptiveCSV(rows []EvalAdaptiveRow) string { return experiment.AdaptiveCSV(rows) }

// Degraded-fabric quality study types: at each fault rate a seeded link
// sample fails, and the study records both the static ibverify quality view
// of the repaired tables and a full simulation of the same outage (see
// internal/verify and EXPERIMENTS.md).
type (
	// EvalDegradedSpec configures the degraded-fabric quality study.
	EvalDegradedSpec = experiment.DegradedSpec
	// EvalDegradedRow is one (scheme, fault rate) outcome of the study.
	EvalDegradedRow = experiment.DegradedRow
)

// EvalDegradedSpecDefault returns the full-fidelity degraded study spec.
func EvalDegradedSpecDefault() EvalDegradedSpec { return experiment.DegradedStudySpec() }

// EvalDegradedSpecQuick returns the reduced-cost degraded study spec.
func EvalDegradedSpecQuick() EvalDegradedSpec { return experiment.QuickDegradedSpec() }

// EvalDegradedStudy runs the degraded-fabric sweep for both schemes across
// the spec's fault rates, each pair on an identical link sample.
func EvalDegradedStudy(spec EvalDegradedSpec) ([]EvalDegradedRow, error) {
	return experiment.DegradedStudy(spec)
}

// DegradedOrderingConsistent checks that the static predicted-accepted
// ranking of the schemes matches the simulated accepted-throughput ordering
// at every fault rate.
func DegradedOrderingConsistent(rows []EvalDegradedRow) error {
	return experiment.DegradedOrderingConsistent(rows)
}

// FormatDegraded renders degraded rows as a markdown table.
func FormatDegraded(rows []EvalDegradedRow) string { return experiment.FormatDegraded(rows) }

// DegradedCSV renders degraded rows in long form.
func DegradedCSV(rows []EvalDegradedRow) string { return experiment.DegradedCSV(rows) }

// In-band subnet-management study types: the same fault schedule — a spine
// link loss, then an outage of the master SM's own switch — replayed under
// the oracle SM and the in-band SM at increasing trap-loss rates, per
// routing scheme (see FaultPlan.InBandSM and EXPERIMENTS.md).
type (
	// EvalSMSpec configures the in-band SM study.
	EvalSMSpec = experiment.SMSpec
	// EvalSMRow is one (scheme, SM mode) outcome of the study.
	EvalSMRow = experiment.SMRow
)

// EvalSMSpecDefault returns the full-fidelity in-band SM study spec.
func EvalSMSpecDefault() EvalSMSpec { return experiment.SMStudySpec() }

// EvalSMSpecQuick returns the reduced-cost in-band SM study spec.
func EvalSMSpecQuick() EvalSMSpec { return experiment.QuickSMSpec() }

// EvalSMStudy runs the in-band SM study and enforces its invariants on
// every run: exact packet conservation (generated = delivered + failed +
// unreachable-degraded + in-flight), one sticky failover per in-band run,
// and sweep-driven recovery of the traps the master outage silenced.
func EvalSMStudy(spec EvalSMSpec) ([]EvalSMRow, error) { return experiment.SMStudy(spec) }

// FormatSM renders in-band SM study rows as a markdown table.
func FormatSM(rows []EvalSMRow) string { return experiment.FormatSM(rows) }

// SMCSV renders in-band SM study rows in long form.
func SMCSV(rows []EvalSMRow) string { return experiment.SMCSV(rows) }

// SMSeriesCSV renders every SM study row's per-interval recovery tail in
// long form.
func SMSeriesCSV(rows []EvalSMRow) string { return experiment.SMSeriesCSV(rows) }

// Observation is one of the paper's evaluation claims checked against
// measured figures.
type Observation = experiment.Observation

// CheckObservations evaluates the paper's Observations 1-5 against
// completed figures.
func CheckObservations(figs []EvalFigure) []Observation {
	return experiment.CheckObservations(figs)
}

// EvalReport renders a markdown reproduction report from figures and
// observation verdicts.
func EvalReport(figs []EvalFigure, obs []Observation) (string, error) {
	return experiment.Report(figs, obs)
}
